"""Discrete-event simulation kernel.

The kernel owns a virtual clock and an event queue.  All other subsystems
(the cluster model, the simulated MPI library, the Paradyn-style tool) are
built on top of three primitives:

* :class:`Kernel` -- the event loop (``schedule`` / ``run``).
* :class:`SimEvent` -- a one-shot trigger that tasks can wait on.
* :class:`Task` -- a coroutine (generator) driven by the kernel.

Tasks are plain Python generators.  They communicate with the kernel by
yielding *effects*:

* ``Delay(dt)`` -- resume the task ``dt`` simulated seconds later.
* ``WaitEvent(ev)`` -- suspend until ``ev.trigger(value)`` fires; the
  triggered value becomes the result of the ``yield``.

Nested calls compose with ``yield from``, so user-level "programs" read like
ordinary sequential code.  The design deliberately mirrors process-based DES
frameworks (SimPy) so that simulated MPI programs stay legible.

Scheduling internals (the fast path; see DESIGN.md "kernel fast path"):

* Heap entries are plain ``(time, seq, call)`` tuples, so ordering is
  resolved by C-level tuple comparison -- no Python ``__lt__`` runs.
* Zero-delay calls (event triggers, task spawns -- the majority of all
  scheduling in message-heavy workloads) bypass the heap through a FIFO
  deque.  Global execution order is still exactly (time, seq): a zero-delay
  call carries ``time == now`` and the largest seq issued so far, the heap
  never holds anything earlier than ``now``, and the run loop merges the
  two lanes by comparing (time, seq) across their heads.
* Cancelled heap entries are counted and the heap is compacted once more
  than half of it is dead, so mass cancellation cannot leak memory.
* Event triggers with many waiters (a barrier releasing thousands of ranks)
  enqueue ONE batched cohort entry instead of N zero-lane entries.  The
  cohort owns a contiguous seq block, so the global (time, seq) order --
  and therefore every observable -- is bit-identical to unbatched
  execution; see DESIGN.md "batched event cohorts" for the invariant
  argument.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, Optional

from ..observe.recorder import active as _observe_active  # mode-salt: none

__all__ = [
    "Delay",
    "WaitEvent",
    "SimEvent",
    "Task",
    "Kernel",
    "SimulationError",
    "DeadlockError",
]


#: trigger wakeups at/above this waiter count are executed as one batched
#: cohort (below it, per-waiter zero-lane entries are cheaper); the value
#: only moves the crossover point -- execution order is identical either way
BATCH_MIN_WAITERS = 8


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation kernel."""


class DeadlockError(SimulationError):
    """Raised when tasks remain but no event can ever fire again."""


@dataclass(frozen=True)
class Delay:
    """Effect: resume the yielding task after ``dt`` simulated seconds."""

    dt: float

    def __post_init__(self) -> None:
        if self.dt < 0:
            raise ValueError(f"negative delay: {self.dt}")


@dataclass(frozen=True)
class WaitEvent:
    """Effect: suspend the yielding task until the event triggers."""

    event: "SimEvent"


class SimEvent:
    """One-shot event with an optional payload value.

    Tasks wait on an event by yielding ``WaitEvent(event)``; the value passed
    to :meth:`trigger` is delivered as the result of the ``yield``.  Waiting
    on an already-triggered event resumes immediately with the stored value.
    """

    __slots__ = ("kernel", "name", "_value", "_triggered", "_waiters")

    def __init__(self, kernel: "Kernel", name: str = "") -> None:
        self.kernel = kernel
        self.name = name
        self._value: Any = None
        self._triggered = False
        self._waiters: list[Task] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} not yet triggered")
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking every waiter at the current time."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        if len(waiters) >= BATCH_MIN_WAITERS:
            self.kernel._schedule_batch([task._step for task in waiters], value)
            return
        schedule = self.kernel.schedule
        for task in waiters:
            schedule(0.0, task._step, value)

    def add_waiter(self, task: "Task") -> None:
        if self._triggered:
            self.kernel.schedule(0.0, task._step, self._value)
        else:
            self._waiters.append(task)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self._triggered else "pending"
        return f"<SimEvent {self.name!r} {state}>"


class Task:
    """A generator coroutine driven by the kernel.

    The task finishes when its generator returns; the return value is stored
    on :attr:`result` and :attr:`done_event` is triggered with it.  Exceptions
    escaping the generator are re-raised out of :meth:`Kernel.run` wrapped in
    their original type, so test failures point at simulated program bugs.
    """

    __slots__ = ("kernel", "name", "_gen", "result", "done_event", "finished", "error")

    def __init__(self, kernel: "Kernel", gen: Generator, name: str = "task") -> None:
        if not hasattr(gen, "send"):
            raise TypeError(f"task body for {name!r} must be a generator, got {type(gen).__name__}")
        self.kernel = kernel
        self.name = name
        self._gen = gen
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.finished = False
        self.done_event = SimEvent(kernel, name=f"{name}.done")

    def _step(self, value: Any = None) -> None:
        try:
            effect = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:  # propagate simulated-program bugs
            self.error = exc
            self.finished = True
            self.kernel._live_tasks -= 1
            self.kernel._failed_task = self
            raise
        cls = effect.__class__
        if cls is Delay:
            self.kernel.schedule(effect.dt, self._step, None)
        elif cls is WaitEvent:
            effect.event.add_waiter(self)
        elif isinstance(effect, Delay):
            self.kernel.schedule(effect.dt, self._step, None)
        elif isinstance(effect, WaitEvent):
            effect.event.add_waiter(self)
        else:
            raise SimulationError(
                f"task {self.name!r} yielded unsupported effect {effect!r}; "
                "yield Delay(...) or WaitEvent(...)"
            )

    def _finish(self, value: Any) -> None:
        self.result = value
        self.finished = True
        self.kernel._live_tasks -= 1
        self.done_event.trigger(value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "finished" if self.finished else "running"
        return f"<Task {self.name!r} {state}>"


class _NoValue:
    """Sentinel: the callback takes no argument."""

    __slots__ = ()


_NOVALUE = _NoValue()


class _ScheduledCall:
    """One pending callback.  Heap ordering lives in the surrounding
    ``(time, seq, call)`` tuple, not here, so no comparison methods run in
    the hot loop; the record itself is just a slotted attribute bundle."""

    __slots__ = ("time", "seq", "callback", "value", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable,
        value: Any = _NOVALUE,
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.value = value
        self.cancelled = cancelled

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " cancelled" if self.cancelled else ""
        return f"<_ScheduledCall t={self.time} seq={self.seq}{flag}>"


class _BatchCall:
    """A cohort of same-timestamp wakeups executed as one queue entry.

    ``seq`` is the *first* member's sequence number; the cohort owns the
    contiguous block ``[seq, seq + len(callbacks))``, reserved at enqueue
    time by advancing the kernel's counter.  Because the counter is
    monotonic, anything scheduled later -- including from inside a member
    callback -- sorts after every member, so running the members
    back-to-back is exactly the order the unbatched per-waiter entries
    would have executed in.  ``pos`` is the resume cursor: an exception
    escaping member ``i`` leaves the cohort re-queued at ``pos == i + 1``,
    matching the unbatched behaviour of losing only the raising entry.
    Cohorts are never cancelled (triggers expose no handle to cancel).
    """

    __slots__ = ("time", "seq", "callbacks", "value", "pos")

    cancelled = False

    def __init__(self, time: float, seq: int, callbacks: list, value: Any) -> None:
        self.time = time
        self.seq = seq
        self.callbacks = callbacks
        self.value = value
        self.pos = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<_BatchCall t={self.time} seq={self.seq} "
            f"{self.pos}/{len(self.callbacks)}>"
        )


class Kernel:
    """The event loop: a priority queue of timestamped callbacks.

    Determinism: ties in time are broken by insertion order (a monotonically
    increasing sequence number), so a run is fully reproducible.  The
    zero-delay FIFO lane preserves exactly that (time, seq) order -- see the
    module docstring.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        #: timed lane: a heap of (time, seq, _ScheduledCall) tuples
        self._queue: list[tuple[float, int, _ScheduledCall]] = []
        #: zero-delay lane: FIFO of _ScheduledCalls with time == now
        self._zero: deque[_ScheduledCall] = deque()
        self._seq = 0
        self._cancelled = 0  # cancelled entries still sitting in the heap
        self._live_tasks = 0
        self._failed_task: Optional[Task] = None
        #: callables run (once each) just before :class:`DeadlockError` is
        #: raised, while the blocked tasks' state is still intact -- this is
        #: how correctness tools snapshot the wait-for graph.
        self.deadlock_hooks: list[Callable[[], None]] = []

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, callback: Callable, value: Any = _NOVALUE) -> _ScheduledCall:
        """Schedule ``callback(value)`` -- or ``callback()`` when no value is
        given -- at ``now + delay``."""
        if delay == 0.0:
            seq = self._seq + 1
            self._seq = seq
            call = _ScheduledCall(self.now, seq, callback, value)
            self._zero.append(call)
            return call
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        seq = self._seq + 1
        self._seq = seq
        call = _ScheduledCall(self.now + delay, seq, callback, value)
        heapq.heappush(self._queue, (call.time, seq, call))
        return call

    def _schedule_batch(self, callbacks: list, value: Any) -> None:
        """Enqueue one zero-delay cohort for ``callbacks`` (all fired with
        ``value``), reserving a contiguous seq block so (time, seq) order
        is identical to ``len(callbacks)`` individual schedule() calls."""
        first = self._seq + 1
        self._seq = first + len(callbacks) - 1
        self._zero.append(_BatchCall(self.now, first, callbacks, value))

    def cancel(self, call: _ScheduledCall) -> None:
        """Cancel a pending call.  Dead heap entries are counted and the heap
        is compacted once cancelled entries outnumber live ones, so mass
        cancellation (e.g. timeout guards that almost always get cancelled)
        cannot grow the queue without bound."""
        if call.cancelled:
            return
        call.cancelled = True
        # Zero-lane entries drain within the current time step, so only heap
        # residency can leak.  The count is a safe overestimate for zero-lane
        # cancels; compaction recomputes it exactly.
        self._cancelled += 1
        if self._cancelled * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify in place (pop order depends
        only on the unique (time, seq) keys, so execution order is
        unchanged)."""
        live = [entry for entry in self._queue if not entry[2].cancelled]
        rec = _observe_active()
        if rec is not None:
            rec.instant("kernel.compact", clock="sim", t=self.now,
                        dropped=len(self._queue) - len(live), live=len(live))
        self._queue[:] = live
        heapq.heapify(self._queue)
        self._cancelled = 0

    def queue_depth(self) -> int:
        """Pending entries across both lanes (cancelled ones included);
        batched cohorts count their not-yet-run members."""
        depth = len(self._queue)
        for call in self._zero:
            if call.__class__ is _BatchCall:
                depth += len(call.callbacks) - call.pos
            else:
                depth += 1
        return depth

    def event(self, name: str = "") -> SimEvent:
        return SimEvent(self, name=name)

    def spawn(self, gen: Generator, name: str = "task") -> Task:
        """Create a task and schedule its first step at the current time."""
        task = Task(self, gen, name=name)
        self._live_tasks += 1
        self.schedule(0.0, task._step, None)
        return task

    # -- running ------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until the queue drains or ``until`` simulated seconds pass.

        Returns the final simulated time.  Raises :class:`DeadlockError` when
        live tasks remain but nothing is scheduled (a real deadlock in the
        simulated program, e.g. an unmatched blocking receive).
        """
        queue = self._queue
        zero = self._zero
        heappop = heapq.heappop
        popleft = zero.popleft
        novalue = _NOVALUE
        events = 0
        # Flight recorder: one identity check per dispatched event when
        # disabled; when enabled, counters are batched (every 8192 events)
        # so the hot loop stays tight.
        rec = _observe_active()
        run_start = rec.now() if rec is not None else 0.0
        while True:
            # pick the earlier lane head by (time, seq); zero-lane entries
            # always carry time == now, so they win unless a heap entry is
            # strictly earlier (impossible) or tied-in-time with smaller seq
            if zero:
                head = zero[0]
                if queue:
                    htime, hseq, _ = queue[0]
                    from_zero = head.time < htime or (head.time == htime and head.seq < hseq)
                else:
                    from_zero = True
                if not from_zero:
                    head = queue[0][2]
            elif queue:
                head = queue[0][2]
                from_zero = False
            else:
                break
            if until is not None and head.time > until:
                self.now = until
                if rec is not None and events:
                    rec.complete("kernel.run", rec.now() - run_start,
                                 events=events)
                return until
            if from_zero:
                popleft()
            else:
                heappop(queue)
            if head.cancelled:
                if not from_zero and self._cancelled:
                    self._cancelled -= 1
                continue
            self.now = head.time
            if head.__class__ is _BatchCall:
                # run the cohort back-to-back: nothing can preempt it
                # (zero-lane appends and heap pushes made during execution
                # all carry seqs beyond the cohort's reserved block)
                callbacks = head.callbacks
                value = head.value
                n = len(callbacks)
                pos = head.pos
                try:
                    while pos < n:
                        callback = callbacks[pos]
                        pos += 1
                        callback(value)
                        events += 1
                        if rec is not None and not (events & 8191):
                            rec.counter("kernel.events", events, clock="sim", t=self.now)
                        if events > max_events:
                            raise SimulationError(
                                f"exceeded max_events={max_events}; runaway simulation?"
                            )
                except BaseException:
                    # keep the cohort resumable past the raising member,
                    # exactly like unbatched entries left in the deque
                    if pos < n:
                        head.pos = pos
                        zero.appendleft(head)
                    raise
                continue
            value = head.value
            if value is novalue:
                head.callback()
            else:
                head.callback(value)
            events += 1
            if rec is not None and not (events & 8191):
                rec.counter("kernel.events", events, clock="sim", t=self.now)
            if events > max_events:
                raise SimulationError(f"exceeded max_events={max_events}; runaway simulation?")
        if rec is not None and events:
            rec.complete("kernel.run", rec.now() - run_start, events=events)
        if self._live_tasks > 0:
            blocked = self._live_tasks
            for hook in list(self.deadlock_hooks):
                hook()
            raise DeadlockError(
                f"simulation deadlock at t={self.now:.6f}: {blocked} task(s) "
                "blocked with an empty event queue"
            )
        return self.now

    def run_tasks(self, tasks: Iterable[Task], until: Optional[float] = None) -> float:
        """Run until every task in ``tasks`` has finished (or ``until``)."""
        tasks = list(tasks)
        deadline = until
        while any(not t.finished for t in tasks):
            before = self.now
            self.run(until=deadline)
            if deadline is not None and self.now >= deadline:
                break
            if self.now == before and not self._queue and not self._zero:
                break
        return self.now
