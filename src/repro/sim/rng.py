"""Deterministic random-number streams for the simulation.

Every stochastic decision in the simulation (which rank wastes time in
``random-barrier``, measurement jitter, network-latency noise) draws from a
named stream so that (a) runs are reproducible given a seed, and (b) adding a
new consumer of randomness does not perturb existing streams -- essential for
the paper-vs-measured comparisons in the benchmark harness.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """A family of independent, named ``numpy`` generators.

    Streams are derived from a root seed and a stream name via CRC32, so the
    mapping is stable across runs and across Python versions (unlike
    ``hash()``).
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            child = zlib.crc32(name.encode("utf-8"))
            gen = np.random.default_rng(np.random.SeedSequence([self.seed, child]))
            self._streams[name] = gen
        return gen

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        return float(self.stream(name).uniform(low, high))

    def integers(self, name: str, low: int, high: int) -> int:
        """Random integer in ``[low, high)`` from the named stream."""
        return int(self.stream(name).integers(low, high))

    def normal(self, name: str, loc: float = 0.0, scale: float = 1.0) -> float:
        return float(self.stream(name).normal(loc, scale))

    def jitter(self, name: str, base: float, rel_sigma: float) -> float:
        """``base`` perturbed by a truncated relative Gaussian (never < 0)."""
        if rel_sigma <= 0.0:
            return base
        value = base * (1.0 + self.normal(name, 0.0, rel_sigma))
        return max(0.0, value)
