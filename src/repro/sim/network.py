"""Network cost models for the simulated cluster.

The MPI personalities (:mod:`repro.mpi.impls`) map each message onto a
:class:`LinkModel` -- e.g. LAM's ``sysv`` RPI uses the shared-memory link for
same-node peers, while MPICH ``ch_p4mpd`` (which, as the paper notes in
Section 5.1.2, had no SMP support) always pays the socket link.  A link is a
classic latency/bandwidth (LogP-flavoured) model with explicit sender /
receiver CPU overheads so that time spent *inside* MPI calls is attributable
to the right place by the instrumentation layer.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LinkModel", "NetworkModel", "ETHERNET", "SHARED_MEMORY"]


@dataclass(frozen=True)
class LinkModel:
    """Cost model for moving one message across one link.

    Attributes
    ----------
    latency:
        One-way wire latency in seconds (independent of size).
    bandwidth:
        Sustained bytes/second for the payload.
    send_overhead / recv_overhead:
        CPU seconds charged to the sender / receiver per message (protocol
        processing, buffer management).
    syscall_fraction:
        Fraction of the CPU overheads spent in ``read``/``write`` system
        calls.  Socket transports have a high fraction -- this is what makes
        Paradyn's I/O metrics (and hence ``ExcessiveIOBlockingTime``) fire
        for MPICH in the paper's small-messages experiment.
    """

    name: str
    latency: float
    bandwidth: float
    send_overhead: float
    recv_overhead: float
    syscall_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= self.syscall_fraction <= 1.0:
            raise ValueError("syscall_fraction must be in [0, 1]")

    def wire_time(self, nbytes: int) -> float:
        """Time on the wire for ``nbytes`` (latency + serialization)."""
        if nbytes < 0:
            raise ValueError("negative message size")
        return self.latency + nbytes / self.bandwidth


#: 100 Mbit-era cluster Ethernet over TCP, the class of interconnect in the
#: paper's testbed: ~120 us latency, ~11.5 MB/s sustained, and substantial
#: per-message CPU overheads in the socket stack.
ETHERNET = LinkModel(
    name="ethernet",
    latency=120e-6,
    bandwidth=11.5e6,
    send_overhead=60e-6,
    recv_overhead=60e-6,
    syscall_fraction=0.85,
)

#: System-V shared memory (LAM's sysv RPI) for same-node peers.
SHARED_MEMORY = LinkModel(
    name="sysv-shm",
    latency=3e-6,
    bandwidth=700e6,
    send_overhead=8e-6,
    recv_overhead=8e-6,
    syscall_fraction=0.05,
)


class NetworkModel:
    """Pairs of (intra-node, inter-node) links for a cluster."""

    def __init__(
        self,
        inter_node: LinkModel = ETHERNET,
        intra_node: LinkModel = SHARED_MEMORY,
    ) -> None:
        self.inter_node = inter_node
        self.intra_node = intra_node

    def link(self, src_node, dst_node, *, allow_shared_memory: bool = True) -> LinkModel:
        """The link used between two nodes.

        ``allow_shared_memory=False`` models transports (MPICH ch_p4mpd)
        that use sockets even between processes on one node.
        """
        if src_node is dst_node and allow_shared_memory:
            return self.intra_node
        return self.inter_node
