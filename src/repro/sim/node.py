"""Cluster topology: machines (nodes), CPUs, and the cluster itself.

A :class:`Cluster` is the simulated analogue of the paper's "Wyeast" Linux
cluster: a set of named nodes, each with one or more CPUs, connected by a
network (modelled in :mod:`repro.sim.network`).  Nodes are deliberately
simple -- the performance phenomena the paper studies are dominated by
message-passing behaviour, not by micro-architecture -- but CPU placement
matters (LAM's ``sysv`` RPI uses shared memory for same-node communication
while MPICH ``ch_p4mpd`` always uses sockets, see Section 5.1.2 of the
paper), so node identity is tracked for every process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["Cpu", "Node", "Cluster"]


@dataclass
class Cpu:
    """One CPU of a node; processes are pinned to CPUs at launch."""

    node: "Node"
    index: int

    @property
    def name(self) -> str:
        return f"{self.node.name}/cpu{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Cpu {self.name}>"


class Node:
    """A machine in the cluster."""

    def __init__(self, name: str, num_cpus: int = 1, index: int = 0) -> None:
        if num_cpus < 1:
            raise ValueError(f"node {name!r} needs at least one CPU")
        self.name = name
        self.index = index
        self.cpus = [Cpu(self, i) for i in range(num_cpus)]
        self.shared_filesystem = True

    @property
    def num_cpus(self) -> int:
        return len(self.cpus)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.name} cpus={self.num_cpus}>"


class Cluster:
    """A collection of nodes plus a pid allocator.

    ``shared_filesystem=False`` models the non-shared-filesystem clusters the
    paper added support for (Section 4.1): launchers must then ship per-node
    working directories / machine files rather than assuming one view.
    """

    def __init__(
        self,
        num_nodes: int = 4,
        cpus_per_node: int = 2,
        name_prefix: str = "wyeast",
        shared_filesystem: bool = False,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.nodes = [
            Node(f"{name_prefix}{i:02d}", num_cpus=cpus_per_node, index=i)
            for i in range(num_nodes)
        ]
        self.shared_filesystem = shared_filesystem
        for node in self.nodes:
            node.shared_filesystem = shared_filesystem
        self._next_pid = 1000

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_cpus(self) -> int:
        return sum(node.num_cpus for node in self.nodes)

    def node(self, index: int) -> Node:
        return self.nodes[index]

    def node_by_name(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no such node: {name!r}")

    def cpus(self) -> Iterator[Cpu]:
        """All CPUs in node order, CPU-index order (LAM's numbering)."""
        for node in self.nodes:
            yield from node.cpus

    def allocate_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Cluster nodes={self.num_nodes} cpus={self.num_cpus}>"
