"""Simulated processes: virtual CPU accounting and instrumentable calls.

A :class:`SimProcess` is one OS process on one CPU of the simulated cluster.
It owns:

* **time accounting** -- wall time comes from the kernel clock; user and
  system CPU time accrue while the process is in :meth:`compute` /
  :meth:`syscall`.  CPU clocks are *interpolated*: sampling mid-compute sees
  partially-accrued time, which is what makes Paradyn-style periodic sampling
  of process timers meaningful.
* **a call stack** of :class:`Frame` objects.  Every function call in a
  simulated program goes through :meth:`call`, which resolves the callee in
  the process's binary image (weak-symbol aware, see
  :mod:`repro.dyninst.image`), runs any entry instrumentation, executes the
  body, and runs exit instrumentation.  This is the boundary at which the
  dynamic-instrumentation substrate operates -- the simulated equivalent of
  Dyninst trampolines.
* **trace hooks** used by the comparator tools (MPE tracing, gprof).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from .kernel import Delay, Kernel, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from ..dyninst.image import FunctionDef, Image
    from .node import Cpu, Node

__all__ = ["ProcState", "Frame", "SimProcess"]


class ProcState(enum.Enum):
    """What the process is doing right now (for CPU-clock interpolation)."""

    BLOCKED = "blocked"
    USER = "user"
    SYSTEM = "system"
    EXITED = "exited"


# hot-path aliases: enum member access is an attribute lookup on the enum
# class plus a descriptor call, which shows up in the CPU-accounting paths
_BLOCKED = ProcState.BLOCKED
_USER = ProcState.USER
_SYSTEM = ProcState.SYSTEM


class Frame:
    """One activation record on a simulated process's call stack.

    Slotted, positional construction: one Frame is allocated per simulated
    function call, which makes this one of the hottest allocations in the
    whole system (see DESIGN.md "kernel fast path")."""

    __slots__ = ("function", "args", "entry_time", "caller", "return_value")

    def __init__(
        self,
        function: "FunctionDef",
        args: tuple = (),
        entry_time: float = 0.0,
        caller: Optional["Frame"] = None,
        return_value: Any = None,
    ) -> None:
        self.function = function
        self.args = args
        self.entry_time = entry_time
        self.caller = caller
        self.return_value = return_value

    @property
    def name(self) -> str:
        return self.function.name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Frame {self.name}>"


class SimProcess:
    """One simulated OS process.

    ``instr_vars`` is the process-local instrumentation data block: the
    counters and timers inserted by the tool daemon live here, keyed by
    variable id.  It is intentionally a plain dict -- the daemon allocates
    and samples entries; the process itself never interprets them.
    """

    def __init__(
        self,
        kernel: Kernel,
        image: "Image",
        *,
        pid: int,
        node: "Node",
        cpu: "Cpu",
        name: str = "a.out",
        argv: Optional[list[str]] = None,
        working_dir: str = "/home/user",
    ) -> None:
        self.kernel = kernel
        self.image = image
        self.pid = pid
        self.node = node
        self.cpu = cpu
        self.name = name
        self.argv = list(argv or [])
        self.working_dir = working_dir
        self.env: dict[str, str] = {}

        self.start_time = kernel.now
        self.exit_time: Optional[float] = None
        self.exited = False
        self.exit_event = kernel.event(name=f"proc{pid}.exit")

        self._state = ProcState.BLOCKED
        self._state_since = kernel.now
        self._cpu_user = 0.0
        self._cpu_system = 0.0

        self.stack: list[Frame] = []
        # symbol-resolution cache for the instrumented-call fast path;
        # invalidated whenever the image's symbol table changes (version
        # counter bumped by add_function/interpose/add_weak_alias)
        self._resolve_cache: dict[str, "FunctionDef"] = {}
        self._resolve_version = -1
        self.instr_vars: dict[int, Any] = {}
        # entry/exit trace hooks: callable(proc, frame, event) where event is
        # "entry" or "exit"; used by MPE-style tracing and gprof.
        self.trace_hooks: list[Callable[["SimProcess", Frame, str], None]] = []
        # hooks run when the process exits (daemon bookkeeping).
        self.exit_hooks: list[Callable[["SimProcess"], None]] = []
        # instrumentation perturbation: virtual seconds charged per executed
        # snippet (0.0 disables perturbation entirely).
        self.snippet_cost = 0.0
        self.snippets_executed = 0

    # -- CPU clocks ----------------------------------------------------------

    def _accrue(self) -> None:
        now = self.kernel.now
        state = self._state
        if state is ProcState.USER:
            self._cpu_user += now - self._state_since
        elif state is ProcState.SYSTEM:
            self._cpu_system += now - self._state_since
        self._state_since = now

    def _set_state(self, state: ProcState) -> None:
        # accrual inlined: this runs twice per compute/syscall, which in
        # message-heavy workloads means several times per simulated call
        now = self.kernel.now
        prev = self._state
        if prev is _USER:
            self._cpu_user += now - self._state_since
        elif prev is _SYSTEM:
            self._cpu_system += now - self._state_since
        self._state_since = now
        self._state = state

    @property
    def state(self) -> ProcState:
        return self._state

    def cpu_user_time(self) -> float:
        """User CPU seconds, interpolated to the current instant."""
        extra = self.kernel.now - self._state_since if self._state is ProcState.USER else 0.0
        return self._cpu_user + extra

    def cpu_system_time(self) -> float:
        """System CPU seconds, interpolated to the current instant."""
        extra = self.kernel.now - self._state_since if self._state is ProcState.SYSTEM else 0.0
        return self._cpu_system + extra

    def cpu_time(self) -> float:
        return self.cpu_user_time() + self.cpu_system_time()

    def wall_time(self) -> float:
        end = self.exit_time if self.exit_time is not None else self.kernel.now
        return end - self.start_time

    # -- effects used by simulated code ---------------------------------------

    def compute(self, seconds: float):
        """Burn ``seconds`` of user CPU time.

        Returns an iterable to drive with ``yield from``.  The zero-cost
        case returns an empty tuple instead of instantiating a generator --
        ``yield from ()`` resumes the caller immediately with no kernel
        round-trip, exactly like the generator early-return did."""
        if seconds == 0.0:
            return ()
        if seconds < 0:
            raise ValueError(f"negative compute time: {seconds}")
        return self._burn(seconds, ProcState.USER)

    def syscall(self, seconds: float):
        """Burn ``seconds`` of *system* CPU time (invisible to user-CPU metrics)."""
        if seconds == 0.0:
            return ()
        if seconds < 0:
            raise ValueError(f"negative syscall time: {seconds}")
        return self._burn(seconds, ProcState.SYSTEM)

    def _burn(self, seconds: float, state: ProcState) -> Generator:
        # _set_state inlined twice: every compute/syscall passes through
        # here, and the method-call overhead is measurable in message-heavy
        # workloads.  The accrual arithmetic is identical to _set_state.
        now = self.kernel.now
        prev = self._state
        if prev is _USER:
            self._cpu_user += now - self._state_since
        elif prev is _SYSTEM:
            self._cpu_system += now - self._state_since
        self._state_since = now
        self._state = state
        yield Delay(seconds)
        now = self.kernel.now
        if state is _USER:
            self._cpu_user += now - self._state_since
        elif state is _SYSTEM:
            self._cpu_system += now - self._state_since
        self._state_since = now
        self._state = _BLOCKED

    def block(self, event) -> Generator:
        """Block (no CPU accrual) until ``event`` triggers; returns its value."""
        from .kernel import WaitEvent

        self._set_state(ProcState.BLOCKED)
        value = yield WaitEvent(event)
        return value

    def sleep(self, seconds: float) -> Generator:
        """Idle (blocked, no CPU) for ``seconds``."""
        if seconds < 0:
            raise ValueError(f"negative sleep: {seconds}")
        self._set_state(ProcState.BLOCKED)
        if seconds > 0.0:
            yield Delay(seconds)

    # -- the instrumented call boundary ---------------------------------------

    def call(self, name: str, *args: Any) -> Generator:
        """Call the function ``name`` in this process's image.

        Resolution honours weak symbols (an MPICH ``MPI_Send`` call executes
        ``PMPI_Send``); entry and exit instrumentation snippets attached to
        the resolved function run around the body.  The body is a generator
        ``body(proc, *args)``.

        Not itself a generator: it resolves the symbol (through a
        per-process cache keyed on the image's symbol-table version) and
        returns the call generator directly, saving one generator frame per
        simulated call under ``yield from``.
        """
        image = self.image
        if self._resolve_version != image.version:
            self._resolve_cache.clear()
            self._resolve_version = image.version
        fn = self._resolve_cache.get(name)
        if fn is None:
            fn = image.resolve(name)
            self._resolve_cache[name] = fn
        return self._call_function(fn, args)

    def _call_function(self, fn: "FunctionDef", args: tuple) -> Generator:
        stack = self.stack
        frame = Frame(fn, args, self.kernel.now, stack[-1] if stack else None)
        stack.append(frame)
        for hook in self.trace_hooks:
            hook(self, frame, "entry")
        entry_snippets = fn.entry_snippets()
        if entry_snippets:
            yield from self._run_snippets(entry_snippets, frame, at_entry=True)
        result: Any = None
        try:
            result = yield from fn.body(self, *args)
        finally:
            # Exit snippets and trace hooks run even if the body raises, so
            # timers never dangle when simulated programs abort.
            frame.return_value = result
            exit_snippets = fn.exit_snippets()
            if exit_snippets:
                yield from self._run_snippets(exit_snippets, frame, at_entry=False)
            for hook in self.trace_hooks:
                hook(self, frame, "exit")
            stack.pop()
        return result

    def _run_snippets(self, snippets, frame: Frame, *, at_entry: bool) -> Generator:
        # Invokes each snippet's compiled closure directly (skipping the
        # Snippet.execute wrapper); cost accrues by repeated addition so the
        # perturbation charge is bit-identical to the pre-fast-path code.
        sc = self.snippet_cost
        cost = 0.0
        count = 0
        for snippet in snippets:
            snippet._run(self, frame, at_entry)
            count += 1
            cost += sc
        self.snippets_executed += count
        if cost > 0.0:
            yield from self.compute(cost)

    def current_function(self) -> Optional[str]:
        return self.stack[-1].name if self.stack else None

    def call_path(self) -> list[str]:
        return [frame.name for frame in self.stack]

    # -- lifecycle -------------------------------------------------------------

    def run_main(self, body: Generator) -> Generator:
        """Wrap a program's top-level generator with exit bookkeeping."""
        try:
            result = yield from body
        finally:
            self._set_state(ProcState.EXITED)
            self.exited = True
            self.exit_time = self.kernel.now
            for hook in list(self.exit_hooks):
                hook(self)
            self.exit_event.trigger(self)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimProcess pid={self.pid} {self.name!r} on {self.node.name}>"
