"""Jumpshot-3-style views over MPE logs.

Two views from the paper:

* the **Statistical Preview** (Figures 12 and 17): for each state
  (MPI function), the average number of processes concurrently in that
  state -- the paper reads off "of the four processes ... approximately
  three of them were executing in MPI_Barrier at any given time";
* the **Time Lines window** (Figures 13 and 16): per-process state
  intervals, rendered as text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .mpe import MpeLog

__all__ = ["StatisticalPreview", "render_timelines"]


@dataclass
class StatisticalPreview:
    """Average concurrent process count per state over a time range."""

    log: MpeLog
    num_ranks: int
    t0: float = 0.0
    t1: Optional[float] = None

    def _range(self) -> tuple[float, float]:
        if not self.log.events:
            return (0.0, 0.0)
        t1 = self.t1 if self.t1 is not None else max(e.time for e in self.log.events)
        return (self.t0, t1)

    def mean_concurrency(self, function: str) -> float:
        """Average number of processes inside ``function`` at once."""
        t0, t1 = self._range()
        span = t1 - t0
        if span <= 0.0:
            return 0.0
        total = 0.0
        for rank in range(self.num_ranks):
            for start, end, name in self.log.intervals(rank):
                if name != function:
                    continue
                total += max(0.0, min(end, t1) - max(start, t0))
        return total / span

    def busiest_states(self, top: int = 5) -> list[tuple[str, float]]:
        rows = [
            (fn, self.mean_concurrency(fn))
            for fn in sorted(self.log.functions())
        ]
        rows.sort(key=lambda pair: pair[1], reverse=True)
        return rows[:top]

    def render(self, top: int = 5) -> str:
        t0, t1 = self._range()
        lines = [f"Jumpshot Statistical Preview  [{t0:.2f}s .. {t1:.2f}s], {self.num_ranks} processes"]
        for fn, mean in self.busiest_states(top):
            bar = "#" * int(round(mean * 10))
            lines.append(f"  {fn:24s} avg {mean:5.2f} procs  {bar}")
        return "\n".join(lines)


def render_timelines(
    log: MpeLog,
    num_ranks: int,
    *,
    t0: float = 0.0,
    t1: Optional[float] = None,
    columns: int = 72,
    state_chars: Optional[dict[str, str]] = None,
) -> str:
    """A text Time Lines window: one row per process, one character per
    time slice showing the MPI state occupying most of that slice
    ('.' = computing / outside MPI)."""
    events = log.events
    if not events:
        return "(empty trace)"
    end = t1 if t1 is not None else max(e.time for e in events)
    if end <= t0:
        return "(empty range)"
    width = (end - t0) / columns
    chars = dict(state_chars or {})

    def char_for(name: str) -> str:
        if name not in chars:
            # stable assignment: first letter of the MPI call, uppercased
            short = name.replace("PMPI_", "").replace("MPI_", "")
            chars[name] = short[0].upper() if short else "?"
        return chars[name]

    lines = []
    for rank in range(num_ranks):
        occupancy = np.zeros(columns)
        labels: list[Optional[str]] = [None] * columns
        best = np.zeros(columns)
        for start, stop, name in log.intervals(rank):
            lo = int(max(0.0, (start - t0) / width))
            hi = int(min(columns - 1, (stop - t0) / width))
            for col in range(lo, hi + 1):
                c0 = t0 + col * width
                overlap = max(0.0, min(stop, c0 + width) - max(start, c0))
                if overlap > best[col]:
                    best[col] = overlap
                    labels[col] = name
        row = "".join(
            char_for(label) if label is not None and best[i] > width * 0.5 else "."
            for i, label in enumerate(labels)
        )
        lines.append(f"rank {rank}: {row}")
    legend = "  ".join(f"{char_for(n)}={n}" for n in sorted(log.functions()))
    return "\n".join(lines) + "\n" + legend
