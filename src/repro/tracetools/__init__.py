"""Comparator tools the paper uses to validate Paradyn's findings:
MPE-style tracing, Jumpshot-3-style views, and a gprof-style profiler."""

from .clog import CLOG_MAGIC, merge_logs, read_clog, write_clog
from .gprof import FlatProfileRow, GprofProfiler
from .jumpshot import StatisticalPreview, render_timelines
from .mpe import EVENT_BYTES, MpeEvent, MpeLog, MpeLogger
from .mpip import CallsiteStats, MpipProfiler

__all__ = [
    "MpeLogger",
    "write_clog",
    "read_clog",
    "merge_logs",
    "CLOG_MAGIC",
    "MpeLog",
    "MpeEvent",
    "EVENT_BYTES",
    "StatisticalPreview",
    "render_timelines",
    "GprofProfiler",
    "FlatProfileRow",
    "MpipProfiler",
    "CallsiteStats",
]
