"""An mpiP-style profiling report.

The paper's related-work survey singles mpiP out among the post-mortem
tools: "An exception is mpiP, which uses profiling information to perform
its analysis of the MPI program" -- aggregate statistics instead of traces,
so it sidesteps the trace-size scalability limit.  This module is that
comparator: per-(callsite, rank) aggregated MPI time and message sizes,
rendered as mpiP's familiar "@--- MPI Time" / "Aggregate Time" sections.

The *callsite* is the application function that invoked MPI (mpiP uses the
call-stack return address); aggregation keyed on it reproduces mpiP's most
useful view at simulation fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi.world import MpiWorld
    from ..sim.process import Frame, SimProcess

__all__ = ["MpipProfiler", "CallsiteStats"]


@dataclass
class CallsiteStats:
    """Aggregate statistics for one (MPI function, calling function) site."""

    mpi_function: str
    callsite: str
    calls: int = 0
    time: float = 0.0
    bytes_sent: int = 0

    @property
    def mean_time(self) -> float:
        return self.time / self.calls if self.calls else 0.0


class MpipProfiler:
    """Link-time MPI profiler: aggregates, never traces."""

    #: argument layouts whose (count, datatype) describe an outgoing payload
    _SEND_LIKE = {"MPI_Send", "PMPI_Send", "MPI_Isend", "PMPI_Isend",
                  "MPI_Ssend", "PMPI_Ssend", "MPI_Put", "PMPI_Put"}

    def __init__(self) -> None:
        self.sites: dict[tuple[str, str], CallsiteStats] = {}
        self.app_time: dict[int, float] = {}  # rank -> wall time
        self.mpi_time: dict[int, float] = {}  # rank -> time inside MPI
        self._ranks: dict[int, int] = {}
        self._entries: dict[tuple[int, int], float] = {}  # (pid, depth) -> t

    def attach_world(self, world: "MpiWorld") -> None:
        for ep in world.endpoints:
            self.attach(ep.proc, ep.world_rank)

    def attach(self, proc: "SimProcess", rank: int) -> None:
        self._ranks[proc.pid] = rank

        def hook(p: "SimProcess", frame: "Frame", kind: str) -> None:
            if "mpi" not in frame.function.tags:
                return
            # only the outermost MPI frame counts (internal PMPI_Sendrecv
            # inside PMPI_Barrier is the implementation's business)
            depth = sum(1 for f in p.stack if "mpi" in f.function.tags)
            if kind == "entry":
                if depth == 1:
                    self._entries[(p.pid, 1)] = p.kernel.now
                return
            if depth != 1:
                return
            start = self._entries.pop((p.pid, 1), None)
            if start is None:
                return
            elapsed = p.kernel.now - start
            callsite = frame.caller.name if frame.caller is not None else "<top>"
            key = (frame.function.name, callsite)
            site = self.sites.get(key)
            if site is None:
                site = CallsiteStats(mpi_function=frame.function.name, callsite=callsite)
                self.sites[key] = site
            site.calls += 1
            site.time += elapsed
            if frame.function.name in self._SEND_LIKE and len(frame.args) >= 3:
                count, dtype = frame.args[1], frame.args[2]
                try:
                    site.bytes_sent += dtype.extent(count)
                except AttributeError:
                    pass
            myrank = self._ranks[p.pid]
            self.mpi_time[myrank] = self.mpi_time.get(myrank, 0.0) + elapsed

        proc.trace_hooks.append(hook)

        def on_exit(p: "SimProcess") -> None:
            self.app_time[self._ranks[p.pid]] = p.wall_time()

        proc.exit_hooks.append(on_exit)

    # -- reporting -----------------------------------------------------------

    def top_sites(self, n: int = 10) -> list[CallsiteStats]:
        return sorted(self.sites.values(), key=lambda s: s.time, reverse=True)[:n]

    def total_mpi_fraction(self) -> float:
        app = sum(self.app_time.values())
        return sum(self.mpi_time.values()) / app if app else 0.0

    def render(self, top: int = 10) -> str:
        """The mpiP-flavoured text report."""
        lines = ["@--- MPI Time (seconds) ---"]
        for rank in sorted(self.app_time):
            app = self.app_time[rank]
            mpi = self.mpi_time.get(rank, 0.0)
            pct = 100.0 * mpi / app if app else 0.0
            lines.append(f"  rank {rank:3d}   apptime {app:8.3f}   mpitime {mpi:8.3f}   {pct:5.1f}%")
        total_app = sum(self.app_time.values())
        total_mpi = sum(self.mpi_time.values())
        lines.append(f"  *         apptime {total_app:8.3f}   mpitime {total_mpi:8.3f}   "
                     f"{100.0 * self.total_mpi_fraction():5.1f}%")
        lines.append("")
        lines.append("@--- Aggregate Time (top sites, descending) ---")
        lines.append("  MPI call         callsite               calls      time    mean      bytes")
        for site in self.top_sites(top):
            lines.append(
                f"  {site.mpi_function:16s} {site.callsite:20s} {site.calls:7d} "
                f"{site.time:9.3f} {site.mean_time * 1e3:7.3f}ms {site.bytes_sent:10d}"
            )
        return "\n".join(lines)
