"""MPE-style trace logging.

The paper validates Paradyn's findings against MPICH's MPE profiling
libraries viewed in Jumpshot-3 (Figures 12, 13, 16, 17).  This module is
the MPE analogue: link-time wrappers (here: process trace hooks) record an
event log of MPI function entry/exit per process, from which Jumpshot-style
views are computed.

The paper had to shorten the traced runs "because of file size
limitations" -- trace logs grow with every event, the scalability problem
Section 2 attributes to post-mortem tools.  :attr:`MpeLog.size_bytes`
models that growth so the trade-off is measurable (see the instrumentation
ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi.world import MpiWorld
    from ..sim.process import Frame, SimProcess

__all__ = ["MpeEvent", "MpeLog", "MpeLogger", "EVENT_BYTES"]

#: bytes per logged event record in the CLOG-ish format
EVENT_BYTES = 24


@dataclass(frozen=True)
class MpeEvent:
    time: float
    rank: int
    function: str
    kind: str  # "entry" | "exit"


@dataclass
class MpeLog:
    """One run's merged event log."""

    events: list[MpeEvent] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return len(self.events) * EVENT_BYTES

    def for_rank(self, rank: int) -> list[MpeEvent]:
        return [e for e in self.events if e.rank == rank]

    def functions(self) -> set[str]:
        return {e.function for e in self.events}

    def intervals(self, rank: int) -> list[tuple[float, float, str]]:
        """(start, end, function) state intervals for one process,
        outermost MPI call only (matching Jumpshot's MPI states)."""
        out: list[tuple[float, float, str]] = []
        stack: list[MpeEvent] = []
        for event in self.for_rank(rank):
            if event.kind == "entry":
                stack.append(event)
            elif stack:
                start = stack.pop()
                if not stack:  # outermost call closed
                    out.append((start.time, event.time, start.function))
        return out


class MpeLogger:
    """Attaches to a world's processes and records MPI entry/exit events."""

    def __init__(self, *, functions: Optional[Iterable[str]] = None) -> None:
        self.log = MpeLog()
        self._filter = set(functions) if functions is not None else None
        self._ranks: dict[int, int] = {}  # pid -> rank

    def attach_world(self, world: "MpiWorld") -> None:
        for ep in world.endpoints:
            self.attach(ep.proc, ep.world_rank)

    def attach(self, proc: "SimProcess", rank: int) -> None:
        self._ranks[proc.pid] = rank

        def hook(p: "SimProcess", frame: "Frame", kind: str) -> None:
            name = frame.function.name
            if "mpi" not in frame.function.tags:
                return
            if self._filter is not None and name not in self._filter:
                return
            self.log.events.append(
                MpeEvent(time=p.kernel.now, rank=self._ranks[p.pid], function=name, kind=kind)
            )

        proc.trace_hooks.append(hook)
