"""CLOG-style trace files: serialize/deserialize MPE logs.

MPE writes CLOG files that Jumpshot consumes; the paper repeatedly hit
their size limits ("Because of file size limitations, we had to shorten
the run time of the program to be able to produce a usable log file").
This module provides a compact binary encoding of :class:`MpeLog` with the
same growth characteristics, so the size trade-off is a measurable
artifact rather than an anecdote, plus merge support for combining
per-rank logs (MPE's post-processing step).
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Iterable

from .mpe import MpeEvent, MpeLog

__all__ = ["write_clog", "read_clog", "merge_logs", "CLOG_MAGIC"]

CLOG_MAGIC = b"SCLG"
_VERSION = 1
#: record: f64 time, u16 rank, u16 function id, u8 kind
_RECORD = struct.Struct("<dHHB")


def write_clog(log: MpeLog, stream: BinaryIO) -> int:
    """Serialize a log; returns the number of bytes written."""
    functions = sorted(log.functions())
    fn_ids = {name: i for i, name in enumerate(functions)}
    if len(functions) > 0xFFFF:
        raise ValueError("too many distinct functions for the CLOG format")
    header = io.BytesIO()
    header.write(CLOG_MAGIC)
    header.write(struct.pack("<HHI", _VERSION, len(functions), len(log.events)))
    for name in functions:
        encoded = name.encode("utf-8")
        header.write(struct.pack("<H", len(encoded)))
        header.write(encoded)
    payload = header.getvalue()
    stream.write(payload)
    written = len(payload)
    for event in log.events:
        record = _RECORD.pack(
            event.time, event.rank, fn_ids[event.function],
            1 if event.kind == "entry" else 0,
        )
        stream.write(record)
        written += _RECORD.size
    return written


def read_clog(stream: BinaryIO) -> MpeLog:
    """Deserialize a log written by :func:`write_clog`."""
    magic = stream.read(4)
    if magic != CLOG_MAGIC:
        raise ValueError(f"not a CLOG stream (magic {magic!r})")
    version, nfunctions, nevents = struct.unpack("<HHI", stream.read(8))
    if version != _VERSION:
        raise ValueError(f"unsupported CLOG version {version}")
    functions = []
    for _ in range(nfunctions):
        (length,) = struct.unpack("<H", stream.read(2))
        functions.append(stream.read(length).decode("utf-8"))
    log = MpeLog()
    for _ in range(nevents):
        time, rank, fn_id, kind = _RECORD.unpack(stream.read(_RECORD.size))
        log.events.append(
            MpeEvent(time=time, rank=rank, function=functions[fn_id],
                     kind="entry" if kind else "exit")
        )
    return log


def merge_logs(logs: Iterable[MpeLog]) -> MpeLog:
    """Merge per-rank (or per-node) logs into one, time-ordered -- the
    post-processing step MPE performs before Jumpshot reads a file."""
    merged = MpeLog()
    for log in logs:
        merged.events.extend(log.events)
    merged.events.sort(key=lambda e: (e.time, e.rank, 0 if e.kind == "exit" else 1))
    return merged
