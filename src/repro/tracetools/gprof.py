"""A gprof-style flat profile of simulated programs.

Figure 19 of the paper validates Paradyn's hot-procedure diagnosis against
gprof: ``bottleneckProcedure`` consumes 100% of the running time while the
``irrelevantProcedure``s are called equally often but take ~0 us/call.
This profiler reproduces that flat-profile table (% time, cumulative /
self seconds, calls, us/call) from the simulation's trace hooks, using
*CPU* time like real gprof's sampling does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.process import Frame, SimProcess

__all__ = ["FlatProfileRow", "GprofProfiler"]


@dataclass
class FlatProfileRow:
    name: str
    self_seconds: float
    calls: int

    @property
    def us_per_call(self) -> float:
        return self.self_seconds / self.calls * 1e6 if self.calls else 0.0


class GprofProfiler:
    """Accumulates exclusive (self) CPU time and call counts per function."""

    def __init__(self, *, app_only: bool = True) -> None:
        self.app_only = app_only
        self.self_time: dict[str, float] = {}
        self.calls: dict[str, int] = {}
        # per-pid shadow stack of (function name, cpu time at last boundary)
        self._stacks: dict[int, list[list]] = {}

    def attach(self, proc: "SimProcess") -> None:
        self._stacks[proc.pid] = []

        def hook(p: "SimProcess", frame: "Frame", kind: str) -> None:
            if self.app_only and "app" not in frame.function.tags:
                # still account the time to the enclosing app function
                return
            stack = self._stacks[p.pid]
            now_cpu = p.cpu_user_time()
            if kind == "entry":
                if stack:
                    top = stack[-1]
                    self.self_time[top[0]] = self.self_time.get(top[0], 0.0) + now_cpu - top[1]
                name = frame.function.name
                self.calls[name] = self.calls.get(name, 0) + 1
                stack.append([name, now_cpu])
            else:
                if not stack or stack[-1][0] != frame.function.name:
                    return  # attached mid-run; ignore unmatched exit
                name, since = stack.pop()
                self.self_time[name] = self.self_time.get(name, 0.0) + now_cpu - since
                if stack:
                    stack[-1][1] = now_cpu

        proc.trace_hooks.append(hook)

    def rows(self) -> list[FlatProfileRow]:
        names = set(self.self_time) | set(self.calls)
        rows = [
            FlatProfileRow(
                name=name,
                self_seconds=self.self_time.get(name, 0.0),
                calls=self.calls.get(name, 0),
            )
            for name in names
        ]
        # tie-break by name: ties (all the zero-time procedures) would
        # otherwise surface the hash-randomized set order above
        rows.sort(key=lambda r: (-r.self_seconds, r.name))
        return rows

    def total_seconds(self) -> float:
        return sum(self.self_time.values())

    def render(self) -> str:
        """The gprof flat-profile table of Figure 19."""
        total = self.total_seconds() or 1.0
        lines = [
            "  %   cumulative   self              self",
            " time   seconds   seconds    calls  us/call  name",
        ]
        cumulative = 0.0
        for row in self.rows():
            cumulative += row.self_seconds
            lines.append(
                f"{100.0 * row.self_seconds / total:5.1f} {cumulative:10.2f} "
                f"{row.self_seconds:9.2f} {row.calls:8d} {row.us_per_call:8.2f}  {row.name}"
            )
        return "\n".join(lines)
