"""PPerfMark: the paper's performance-tool benchmark suite.

PPerfMark (Section 5.1.1) is derived from the Grindstone PVM test suite,
converted to MPI, plus new MPI-2 programs (Section 5.2).  Every program is
a *behavioural contract*: it has a known bottleneck, and a performance tool
passes if it finds that bottleneck.  :class:`PPerfProgram` carries the
contract (:attr:`expectation`) alongside the workload; the verdict logic in
:mod:`repro.analysis.verify` checks a Performance Consultant run against
it, regenerating Tables 2 and 3.

All programs take scaled-down iteration counts relative to the paper (the
defaults target seconds of simulated time); the paper's parameters are
recorded in each class docstring.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Generator, Optional, Type

from ..mpi.world import MpiProgram

__all__ = ["PPerfProgram", "Expectation", "REGISTRY", "register", "program_names", "create"]


@dataclass(frozen=True)
class Expectation:
    """What a correct tool must (and must not) report for a program.

    ``required`` entries are ``(hypothesis, needles...)`` tuples: some true
    PC node for that hypothesis must mention every needle in its focus.
    ``forbidden`` entries must match no true node.  ``all_false`` asserts
    the PC finds nothing at all (the system-time program).
    """

    required: tuple[tuple[str, ...], ...] = ()
    forbidden: tuple[tuple[str, ...], ...] = ()
    all_false: bool = False


class PPerfProgram(MpiProgram):
    """Base class: adds the contract, default process counts, RNG support."""

    #: suite the program belongs to: "mpi1" or "mpi2"
    suite = "mpi1"
    #: default number of processes (paper's run configuration, Section 5)
    default_nprocs = 4
    #: processes per node in the paper's runs ("two each on three nodes")
    procs_per_node = 2
    #: the behavioural contract
    expectation = Expectation()
    #: human description straight out of Table 2/3
    description = ""

    def deterministic_choice(self, label: str, iteration: int, n: int) -> int:
        """A pseudo-random value all ranks agree on without communicating
        (used by random-barrier): stable across runs and platforms."""
        return zlib.crc32(f"{self.name}:{label}:{iteration}".encode()) % n

    # convenience used by many programs ------------------------------------

    def waste(self, mpi, proc, seconds: float) -> Generator:
        """The canonical ``waste_time`` busy loop."""
        yield from mpi.compute(seconds)


REGISTRY: dict[str, Type[PPerfProgram]] = {}


def register(cls: Type[PPerfProgram]) -> Type[PPerfProgram]:
    """Class decorator adding a program to the suite registry."""
    if cls.name in REGISTRY:
        raise ValueError(f"duplicate PPerfMark program {cls.name!r}")
    REGISTRY[cls.name] = cls
    return cls


def program_names(suite: Optional[str] = None) -> list[str]:
    return sorted(
        name for name, cls in REGISTRY.items() if suite is None or cls.suite == suite
    )


def create(name: str, **params) -> PPerfProgram:
    try:
        cls = REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown PPerfMark program {name!r}; have {program_names()}") from None
    return cls(**params)
