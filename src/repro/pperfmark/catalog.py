"""The program catalog: names -> instances, plus scaled-down parameters.

This lives in :mod:`repro.pperfmark` (not the sanitizer) on purpose: program
resolution is used by *every* execution mode -- tool runs, sanitizer runs,
fleet sweeps -- and keeping it beside the registries it reads means none of
those paths needs to import the sanitizer package.  That matters for the
fleet's per-subsystem cache salts (see :mod:`repro.fleet.spec`): a
sanitizer-only edit must not invalidate cached tool-mode artifacts, which is
only sound if tool-mode execution genuinely never reaches sanitizer code.
"""

from __future__ import annotations

from typing import Any

from .base import REGISTRY, create

__all__ = ["CLEAN_PROGRAMS", "SMALL_PARAMS", "resolve_program"]

#: the paper's 16 clean PPerfMark programs (8 MPI-1 + 7 MPI-2 + oned)
#: plus the nengo-mpi-style data-parallel spawn workload -- 17 in all
CLEAN_PROGRAMS = (
    "small_messages",
    "big_message",
    "wrong_way",
    "intensive_server",
    "random_barrier",
    "diffuse_procedure",
    "system_time",
    "hot_procedure",
    "allcount",
    "wincreateblast",
    "winfencesync",
    "winscpwsync",
    "spawncount",
    "spawnsync",
    "spawnwinsync",
    "spawn_workload",
    "oned",
)

#: scaled-down constructor parameters for quick sweeps (CI, tests): same
#: code paths and communication structure, far fewer iterations.
SMALL_PARAMS: dict[str, dict[str, Any]] = {
    "small_messages": {"iterations": 300},
    "big_message": {"iterations": 8},
    "wrong_way": {"iterations": 30, "batch": 10},
    "intensive_server": {"iterations": 40, "time_to_waste": 0.05},
    "random_barrier": {"iterations": 12, "time_to_waste": 0.2},
    "diffuse_procedure": {"iterations": 40},
    "system_time": {"iterations": 60, "barrier_every": 20},
    "hot_procedure": {"iterations": 60},
    "allcount": {"epochs": 10},
    "wincreateblast": {"num_windows": 10},
    "winfencesync": {"iterations": 30, "waste_seconds": 1e-3},
    "winscpwsync": {"iterations": 30, "waste_seconds": 1e-3},
    "spawncount": {"spawns": 2, "children_per_spawn": 2},
    "spawnsync": {"children": 2, "messages": 30, "waste_seconds": 1e-3},
    "spawnwinsync": {"children": 2, "iterations": 30, "waste_seconds": 1e-3},
    "spawn_workload": {
        "workers": 2,
        "chunks": 4,
        "chunk_elems": 8,
        "steps": 2,
        "work_seconds": 1e-4,
    },
    "oned": {"iterations": 12, "local_rows": 8, "row_width": 64},
}


def resolve_program(name: str, *, quick: bool = False):
    """A program instance from the PPerfMark or defect registries."""
    from .defects import DEFECT_REGISTRY

    if name in REGISTRY:
        params = SMALL_PARAMS.get(name, {}) if quick else {}
        return create(name, **params)
    if name in DEFECT_REGISTRY:
        return DEFECT_REGISTRY[name]()
    known = sorted(set(REGISTRY) | set(DEFECT_REGISTRY))
    raise KeyError(f"unknown program {name!r}; known: {known}")
