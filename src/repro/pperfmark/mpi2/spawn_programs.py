"""Dynamic-process-creation PPerfMark programs (Table 3).

* **spawncount** -- spawns a known number of children that simply exit;
  the tool must detect and incorporate every new process (Figure 23).
* **spawnsync** -- children receive a known number of messages from the
  parent over the spawn intercommunicator while the parent wastes time in
  ``parentfunction``; the PC must find the children's excessive
  synchronization waiting time in ``MPI_Recv`` (inside ``childfunction``)
  and the parent CPU-bound in ``parentfunction`` (Figure 24, left).
* **spawnwinsync** -- parent and children merge the intercommunicator and
  create an RMA window named ``ParentChildWin`` over it; the parent's
  compute bottleneck makes children wait in ``MPI_Win_fence`` (Figure 24,
  right).  Under LAM the fence is built on ``MPI_Isend``/``MPI_Waitall``
  plus ``MPI_Barrier``, so message-passing synchronization shows up too --
  and the window's friendly name must appear in the PC output.

Each parent program registers its child program in the universe's program
registry the first time it runs, so ``MPI_Comm_spawn("<child>")`` resolves.

All three are *clean* programs: both sides ``MPI_Comm_disconnect`` the
spawn intercommunicator before ``MPI_Finalize``, so the sanitizer's
intercomm-leak detector stays quiet (``defect_spawn_intercomm_leak`` is
the seeded counterexample).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ...mpi.datatypes import INT
from ...mpi.world import MpiProgram
from ..base import Expectation, PPerfProgram, register

__all__ = [
    "SpawnCount",
    "SpawnCountChild",
    "SpawnSync",
    "SpawnSyncChild",
    "SpawnWinSync",
    "SpawnWinSyncChild",
]

WORK_TAG = 3


class SpawnCountChild(MpiProgram):
    """Children of spawncount: initialize, synchronize with parent, exit."""

    name = "spawncount_child"
    module = "spawncount_child.c"

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        parent = yield from mpi.comm_get_parent()
        yield from mpi.send(0, nbytes=4, tag=WORK_TAG, comm=parent, payload="up")
        yield from mpi.comm_disconnect(parent)
        yield from mpi.finalize()


@register
class SpawnCount(PPerfProgram):
    name = "spawncount"
    module = "spawncount.c"
    suite = "mpi2"
    default_nprocs = 2
    description = (
        "This program spawns a known number of child processes. The child "
        "processes simply exit."
    )
    expectation = Expectation()  # verified by hierarchy/process inspection

    def __init__(self, spawns: int = 3, children_per_spawn: int = 3) -> None:
        self.spawns = spawns
        self.children_per_spawn = children_per_spawn

    def expected_children(self) -> int:
        return self.spawns * self.children_per_spawn

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        if "spawncount_child" not in mpi.ep.world.universe.program_registry:
            mpi.ep.world.universe.register_program(SpawnCountChild())
        for _ in range(self.spawns):
            inter, _codes = yield from mpi.comm_spawn(
                "spawncount_child", [], self.children_per_spawn
            )
            if mpi.rank == 0:
                for _ in range(self.children_per_spawn):
                    yield from mpi.recv(tag=WORK_TAG, comm=inter)
            yield from mpi.comm_disconnect(inter)
        yield from mpi.finalize()


class SpawnSyncChild(MpiProgram):
    """Children of spawnsync: receive the parent's messages in childfunction."""

    name = "spawnsync_child"
    module = "spawnsync_child.c"

    def __init__(self, messages: int = 700) -> None:
        self.messages = messages

    def functions(self):
        return {"childfunction": self._childfunction}

    def _childfunction(self, mpi, proc, parent) -> Generator:
        yield from mpi.recv(source=0, tag=WORK_TAG, comm=parent)

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        parent = yield from mpi.comm_get_parent()
        for _ in range(self.messages):
            yield from mpi.call("childfunction", parent)
        yield from mpi.comm_disconnect(parent)
        yield from mpi.finalize()


@register
class SpawnSync(PPerfProgram):
    name = "spawnsync"
    module = "spawnsync.c"
    suite = "mpi2"
    default_nprocs = 1
    description = (
        "This program spawns children and then sends a known number of "
        "messages on an intracommunicator between the parent and child "
        "processes. An artificial bottleneck is introduced in the parent "
        "process."
    )
    expectation = Expectation(
        required=(
            ("ExcessiveSyncWaitingTime", "childfunction"),
            ("CPUBound", "parentfunction"),
        ),
    )

    def __init__(
        self,
        children: int = 3,
        messages: int = 700,
        waste_seconds: float = 12e-3,
        msg_bytes: int = 4,
    ) -> None:
        self.children = children
        self.messages = messages
        self.waste_seconds = waste_seconds
        self.msg_bytes = msg_bytes

    def functions(self):
        return {"parentfunction": self._parentfunction}

    def _parentfunction(self, mpi, proc, inter) -> Generator:
        yield from mpi.compute(self.waste_seconds)
        for child in range(self.children):
            yield from mpi.send(child, nbytes=self.msg_bytes, tag=WORK_TAG, comm=inter)

    def expected_messages(self) -> int:
        return self.messages * self.children

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        universe = mpi.ep.world.universe
        if "spawnsync_child" not in universe.program_registry:
            universe.register_program(SpawnSyncChild(messages=self.messages))
        inter, _codes = yield from mpi.comm_spawn("spawnsync_child", [], self.children)
        for _ in range(self.messages):
            yield from mpi.call("parentfunction", inter)
        yield from mpi.comm_disconnect(inter)
        yield from mpi.finalize()


class SpawnWinSyncChild(MpiProgram):
    """Children of spawnwinsync: fence on the parent/child window."""

    name = "spawnwinsync_child"
    module = "spawnwinsync_child.c"

    def __init__(self, iterations: int = 700, count: int = 16) -> None:
        self.iterations = iterations
        self.count = count

    def functions(self):
        return {"childfunction": self._childfunction}

    def _childfunction(self, mpi, proc, win, data) -> Generator:
        # each child owns a disjoint slice of the parent's window: siblings
        # putting to the same range within one fence epoch would be a race
        yield from mpi.put(win, 0, data, target_disp=self.count * mpi.rank)
        yield from mpi.win_fence(win)

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        parent = yield from mpi.comm_get_parent()
        merged = yield from mpi.intercomm_merge(parent, high=True)
        win = yield from mpi.win_create(max(64, self.count * 4), datatype=INT, comm=merged)
        yield from mpi.win_fence(win)
        data = np.full(self.count, mpi.rank + 1, dtype="i4")
        for _ in range(self.iterations):
            yield from mpi.call("childfunction", win, data)
        yield from mpi.win_free(win)
        yield from mpi.comm_disconnect(parent)
        yield from mpi.finalize()


@register
class SpawnWinSync(PPerfProgram):
    name = "spawnwinsync"
    module = "spawnwinsync.c"
    suite = "mpi2"
    default_nprocs = 1
    description = (
        "This program spawns child processes and then sets up an RMA window "
        "over an intracommunicator between the parent and child processes. "
        "There is an artificial bottleneck in the parent process."
    )
    expectation = Expectation(
        required=(
            ("ExcessiveSyncWaitingTime",),
            ("CPUBound", "parentfunction"),
        ),
    )

    def __init__(
        self,
        children: int = 3,
        iterations: int = 700,
        waste_seconds: float = 10e-3,
        count: int = 16,
    ) -> None:
        self.children = children
        self.iterations = iterations
        self.waste_seconds = waste_seconds
        self.count = count

    def functions(self):
        return {"parentfunction": self._parentfunction}

    def _parentfunction(self, mpi, proc, win) -> Generator:
        yield from mpi.compute(self.waste_seconds)
        yield from mpi.win_fence(win)

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        universe = mpi.ep.world.universe
        if "spawnwinsync_child" not in universe.program_registry:
            universe.register_program(
                SpawnWinSyncChild(iterations=self.iterations, count=self.count)
            )
        inter, _codes = yield from mpi.comm_spawn("spawnwinsync_child", [], self.children)
        merged = yield from mpi.intercomm_merge(inter, high=False)
        yield from mpi.comm_set_name(merged, "Parent&Child")
        win = yield from mpi.win_create(max(64, self.count * 4), datatype=INT, comm=merged)
        yield from mpi.win_set_name(win, "ParentChildWin")
        yield from mpi.win_fence(win)
        for _ in range(self.iterations):
            yield from mpi.call("parentfunction", win)
        yield from mpi.win_free(win)
        yield from mpi.comm_disconnect(inter)
        yield from mpi.finalize()
