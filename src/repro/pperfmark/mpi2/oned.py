"""Oned: the 1-D Poisson RMA example from "Using MPI-2" (Gropp/Lusk/Thakur).

Section 5.2.1.2 of the paper: like ``sstwod`` but ghost-cell exchange uses
one-sided communication -- ``exchng1`` opens a fence epoch, ``MPI_Put``s
boundary rows to both neighbours' windows, and closes with a second fence.
The known communication bottleneck is ``MPI_Win_fence`` inside
``exchng1``.  The paper's Figure 22 also shows a LAM-only refinement to
the ``Barrier`` synchronization object, because LAM implements
``MPI_Win_fence`` with a call to ``MPI_Barrier`` -- reproduced here by the
LAM personality's fence implementation.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ...mpi.datatypes import DOUBLE
from ..base import Expectation, PPerfProgram, register

__all__ = ["Oned"]


@register
class Oned(PPerfProgram):
    name = "oned"
    module = "oned.c"
    suite = "mpi2"
    default_nprocs = 4
    procs_per_node = 2
    description = (
        "1-D Poisson solver from 'Using MPI-2' using RMA for communication; "
        "known communication bottleneck in MPI_Win_fence in exchng1."
    )
    expectation = Expectation(
        required=(
            ("ExcessiveSyncWaitingTime",),
            ("ExcessiveSyncWaitingTime", "exchng1"),
        ),
    )

    def __init__(
        self,
        iterations: int = 2500,
        local_rows: int = 32,
        row_width: int = 2048,
        compute_seconds: float = 0.2e-3,
        jitter: float = 0.3,
    ) -> None:
        self.iterations = iterations
        self.local_rows = local_rows
        self.row_width = row_width
        self.compute_seconds = compute_seconds
        #: per-(rank, iteration) load factor range (see Sstwod)
        self.jitter = jitter

    def functions(self):
        return {"exchng1": self._exchng1, "sweep1d": self._sweep}

    def _exchng1(self, mpi, proc, win, grid) -> Generator:
        """Fence; put boundary rows into the neighbours' windows; fence."""
        rank, n = mpi.rank, mpi.size
        yield from mpi.win_fence(win)
        if rank > 0:
            yield from mpi.put(win, rank - 1, grid[1], target_disp=self.row_width)
        if rank < n - 1:
            yield from mpi.put(win, rank + 1, grid[-2], target_disp=0)
        yield from mpi.win_fence(win)

    def _sweep(self, mpi, proc, win, grid, iteration: int) -> Generator:
        draw = self.deterministic_choice("load", iteration * mpi.size + mpi.rank, 1000)
        factor = 0.5 + self.jitter * draw / 1000.0
        yield from mpi.compute(self.compute_seconds * factor)
        # ghost rows live in the window: [0:w] was put by the right
        # neighbour, [w:2w] by the left (see _exchng1's target_disp values)
        w = self.row_width
        ghosts = win.buffers[mpi.rank]
        grid[0, :] = ghosts[w : 2 * w]
        grid[-1, :] = ghosts[:w]
        grid[1:-1, 1:-1] = 0.25 * (
            grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
        )
        return float(np.abs(grid).mean())

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        rng = np.random.default_rng(7 + mpi.rank)
        grid = rng.random((self.local_rows + 2, self.row_width))
        win = yield from mpi.win_create(2 * self.row_width, datatype=DOUBLE)
        yield from mpi.win_set_name(win, "GhostCellWindow")
        for iteration in range(self.iterations):
            yield from mpi.call("exchng1", win, grid)
            diff = yield from mpi.call("sweep1d", win, grid, iteration)
            yield from mpi.allreduce(diff, nbytes=8)
        yield from mpi.win_free(win)
        yield from mpi.finalize()
