"""A data-parallel simulation workload family modeled on nengo-mpi.

nengo-mpi runs large neural simulations as a master that spawns worker
*processors* (``MPI_Comm_spawn``), partitions the model into chunks it
assigns to them, steps the simulation in lockstep, and gathers probe
data back over the spawn intercommunicator -- with an ``mpi_merged``
flag that coalesces the per-chunk traffic of one worker into a single
message.  ``spawn_workload`` reproduces that shape on the simulated
MPI engine:

1. **spawn** -- the master spawns ``workers`` worker processes;
2. **distribute** (``SETUP_TAG``) -- model chunk ``c`` goes to worker
   ``c % workers``; with ``merged=True`` each worker gets one
   concatenated message instead of one message per chunk;
3. **step** (``STEP_TAG``) -- every step the master sends each worker a
   4-byte directive; workers simulate (compute scaled by their chunk
   count);
4. **gather** (``PROBE_TAG``) -- on probe steps (``step % probe_every
   == 0``) every worker sends its probe data back: per chunk unmerged,
   one coalesced message per worker merged.  The master stores each
   probe array in ``self.gathered[(step, chunk)]``;
5. **disconnect** -- both sides ``MPI_Comm_disconnect`` the intercomm
   before finalizing.

The ``merged`` toggle changes *message counts only*: the bytes moved in
the distribute and gather phases are identical in both modes, and the
gathered probe arrays are bit-identical -- the invariant the hypothesis
property tests pin down.  Probe payloads are deterministic functions of
the chunk id and step (``chunk_data(c) * (step + 1)``), so round-trips
are verifiable without golden files.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ...mpi.datatypes import DOUBLE, INT
from ...mpi.world import MpiProgram
from ..base import Expectation, PPerfProgram, register

__all__ = ["SpawnWorkload", "SpawnWorkloadWorker"]

#: model-chunk distribution messages (nengo-mpi's setup_tag)
SETUP_TAG = 1
#: probe-data gather messages (nengo-mpi's probe_tag)
PROBE_TAG = 2
#: per-step directives from the master (tag 3 is the spawn trio's WORK_TAG)
STEP_TAG = 4


def _worker_chunks(chunks: int, workers: int, worker: int) -> list[int]:
    """Chunk ids owned by ``worker`` (round-robin assignment)."""
    return [c for c in range(chunks) if c % workers == worker]


def _chunk_data(chunk: int, chunk_elems: int) -> np.ndarray:
    """The deterministic model data of one chunk."""
    return np.arange(chunk_elems, dtype="f8") * (chunk + 1.0)


class _WorkloadShape:
    """Parameters and derived layout shared by master and workers."""

    workers: int
    chunks: int
    chunk_elems: int
    steps: int
    probe_every: int
    work_seconds: float
    merged: bool

    def worker_chunks(self, worker: int) -> list[int]:
        return _worker_chunks(self.chunks, self.workers, worker)

    def chunk_data(self, chunk: int) -> np.ndarray:
        return _chunk_data(chunk, self.chunk_elems)

    def probe_steps(self) -> list[int]:
        return [s for s in range(self.steps) if s % self.probe_every == 0]

    def chunk_nbytes(self, nchunks: int = 1) -> int:
        return nchunks * self.chunk_elems * DOUBLE.size


class SpawnWorkloadWorker(MpiProgram, _WorkloadShape):
    """One spawned worker processor: holds chunks, steps, reports probes."""

    name = "spawn_workload_worker"
    module = "spawn_workload_worker.c"

    def __init__(
        self,
        workers: int = 4,
        chunks: int = 8,
        chunk_elems: int = 16,
        steps: int = 3,
        probe_every: int = 1,
        work_seconds: float = 2e-3,
        merged: bool = False,
    ) -> None:
        self.workers = workers
        self.chunks = chunks
        self.chunk_elems = chunk_elems
        self.steps = steps
        self.probe_every = probe_every
        self.work_seconds = work_seconds
        self.merged = merged

    def functions(self):
        return {"workerstep": self._workerstep}

    def _workerstep(self, mpi, proc, parent, step, model) -> Generator:
        """Simulate this worker's chunks for one step, then report probes."""
        if model:
            yield from mpi.compute(self.work_seconds * len(model))
        if step % self.probe_every != 0 or not model:
            return
        scale = float(step + 1)
        if self.merged:
            payload = [(step, c, model[c] * scale) for c in sorted(model)]
            yield from mpi.send(
                0,
                nbytes=self.chunk_nbytes(len(model)),
                tag=PROBE_TAG,
                comm=parent,
                payload=payload,
                datatype=DOUBLE,
            )
        else:
            for c in sorted(model):
                yield from mpi.send(
                    0,
                    nbytes=self.chunk_nbytes(),
                    tag=PROBE_TAG,
                    comm=parent,
                    payload=(step, c, model[c] * scale),
                    datatype=DOUBLE,
                )

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        parent = yield from mpi.comm_get_parent()
        mine = self.worker_chunks(mpi.rank)
        model: dict[int, np.ndarray] = {}
        if self.merged:
            if mine:
                batch = yield from mpi.recv(
                    source=0,
                    tag=SETUP_TAG,
                    comm=parent,
                    nbytes=self.chunk_nbytes(len(mine)),
                    datatype=DOUBLE,
                )
                for chunk, data in batch:
                    model[chunk] = data
        else:
            for _ in mine:
                chunk, data = yield from mpi.recv(
                    source=0,
                    tag=SETUP_TAG,
                    comm=parent,
                    nbytes=self.chunk_nbytes(),
                    datatype=DOUBLE,
                )
                model[chunk] = data
        for step in range(self.steps):
            yield from mpi.recv(
                source=0, tag=STEP_TAG, comm=parent, nbytes=4, datatype=INT
            )
            yield from mpi.call("workerstep", parent, step, model)
        yield from mpi.comm_disconnect(parent)
        yield from mpi.finalize()


@register
class SpawnWorkload(PPerfProgram, _WorkloadShape):
    name = "spawn_workload"
    module = "spawn_workload.c"
    suite = "mpi2"
    default_nprocs = 1
    description = (
        "A nengo-mpi-style data-parallel simulation: the master spawns "
        "worker processors, distributes model chunks over the spawn "
        "intercommunicator, steps the simulation in lockstep, and gathers "
        "probe data each probe step. The merged flag coalesces per-chunk "
        "traffic into one message per worker (message counts change, "
        "bytes and probe data do not)."
    )
    expectation = Expectation()  # verified by gathered-probe inspection

    #: name of the spawned child program
    child_name = "spawn_workload_worker"

    def __init__(
        self,
        workers: int = 4,
        chunks: int = 8,
        chunk_elems: int = 16,
        steps: int = 3,
        probe_every: int = 1,
        work_seconds: float = 2e-3,
        merged: bool = False,
    ) -> None:
        self.workers = workers
        self.chunks = chunks
        self.chunk_elems = chunk_elems
        self.steps = steps
        self.probe_every = probe_every
        self.work_seconds = work_seconds
        self.merged = merged
        #: (step, chunk) -> probe array, filled by the gather phase
        self.gathered: dict[tuple[int, int], np.ndarray] = {}

    def probe_recv_elems(self, elems: int) -> int:
        """Receive-buffer size (elements) the master posts for one probe
        message of ``elems`` doubles.  Seeded-defect subclasses shrink it
        to provoke the truncation detector."""
        return elems

    def make_worker(self) -> SpawnWorkloadWorker:
        return SpawnWorkloadWorker(
            workers=self.workers,
            chunks=self.chunks,
            chunk_elems=self.chunk_elems,
            steps=self.steps,
            probe_every=self.probe_every,
            work_seconds=self.work_seconds,
            merged=self.merged,
        )

    def expected_probe_keys(self) -> set[tuple[int, int]]:
        return {(s, c) for s in self.probe_steps() for c in range(self.chunks)}

    def master_messages(self) -> int:
        """Messages the master sends: distribution + step directives."""
        loaded = sum(1 for w in range(self.workers) if self.worker_chunks(w))
        distribution = loaded if self.merged else self.chunks
        return distribution + self.steps * self.workers

    def functions(self):
        return {"gatherprobes": self._gatherprobes}

    def _gatherprobes(self, mpi, proc, inter, step) -> Generator:
        """Collect one probe step's data from every loaded worker."""
        for worker in range(self.workers):
            mine = self.worker_chunks(worker)
            if not mine:
                continue
            if self.merged:
                batch = yield from mpi.recv(
                    source=worker,
                    tag=PROBE_TAG,
                    comm=inter,
                    nbytes=self.probe_recv_elems(len(mine) * self.chunk_elems)
                    * DOUBLE.size,
                    datatype=DOUBLE,
                )
                for s, c, data in batch:
                    self.gathered[(s, c)] = data
            else:
                for _ in mine:
                    s, c, data = yield from mpi.recv(
                        source=worker,
                        tag=PROBE_TAG,
                        comm=inter,
                        nbytes=self.probe_recv_elems(self.chunk_elems)
                        * DOUBLE.size,
                        datatype=DOUBLE,
                    )
                    self.gathered[(s, c)] = data

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        universe = mpi.ep.world.universe
        if self.child_name not in universe.program_registry:
            universe.register_program(self.make_worker())
        inter, _codes = yield from mpi.comm_spawn(self.child_name, [], self.workers)
        if self.merged:
            for worker in range(self.workers):
                mine = self.worker_chunks(worker)
                if not mine:
                    continue
                payload = [(c, self.chunk_data(c)) for c in mine]
                yield from mpi.send(
                    worker,
                    nbytes=self.chunk_nbytes(len(mine)),
                    tag=SETUP_TAG,
                    comm=inter,
                    payload=payload,
                    datatype=DOUBLE,
                )
        else:
            for c in range(self.chunks):
                yield from mpi.send(
                    c % self.workers,
                    nbytes=self.chunk_nbytes(),
                    tag=SETUP_TAG,
                    comm=inter,
                    payload=(c, self.chunk_data(c)),
                    datatype=DOUBLE,
                )
        for step in range(self.steps):
            for worker in range(self.workers):
                yield from mpi.send(
                    worker, nbytes=4, tag=STEP_TAG, comm=inter,
                    payload=step, datatype=INT,
                )
            if step % self.probe_every == 0:
                yield from mpi.call("gatherprobes", inter, step)
        yield from mpi.comm_disconnect(inter)
        yield from mpi.finalize()
