"""winlocksync: the passive-target test the paper could not run.

Section 5.2.1.1: "We have not yet implemented the passive target test
programs because neither LAM nor MPICH2 support passive target
synchronization as of this writing."  This is that program, runnable on
the forward-looking ``refmpi`` personality: origin ranks contend for an
exclusive window lock on rank 0, so lock-waiting time accumulates in
``MPI_Win_lock``/``MPI_Win_unlock`` and the ``pt_rma_sync_wait`` metric of
Table 1 finally has something to measure (``bench_ext_passive_target``).
On ``lam``/``mpich2`` the program raises
:class:`~repro.mpi.errors.UnsupportedFeature`, as the paper's environment
would have.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ...mpi.datatypes import INT, SUM
from ..base import Expectation, PPerfProgram, register

__all__ = ["WinLockSync"]


@register
class WinLockSync(PPerfProgram):
    name = "winlocksync"
    module = "winlocksync.c"
    suite = "mpi2"
    default_nprocs = 4
    description = (
        "Passive-target synchronization stress: ranks contend for an "
        "exclusive lock on rank 0's window (requires passive-target RMA "
        "support; refmpi only)."
    )
    expectation = Expectation(
        required=(
            ("ExcessiveSyncWaitingTime",),
        ),
    )

    def __init__(
        self,
        iterations: int = 500,
        hold_seconds: float = 2.5e-3,
        count: int = 16,
    ) -> None:
        self.iterations = iterations
        self.hold_seconds = hold_seconds
        self.count = count

    def functions(self):
        return {"update_shared": self._update}

    def _update(self, mpi, proc, win, data) -> Generator:
        yield from mpi.win_lock(win, 0)
        yield from mpi.compute(self.hold_seconds)  # long critical section
        yield from mpi.accumulate(win, 0, data, op=SUM)
        yield from mpi.win_unlock(win, 0)

    def expected_total(self, nprocs: int) -> int:
        """Sum accumulated at rank 0 per element when all ranks finish."""
        return (nprocs - 1) * self.iterations

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        win = yield from mpi.win_create(self.count, datatype=INT)
        yield from mpi.win_set_name(win, "LockWindow")
        data = np.ones(self.count, dtype="i4")
        if mpi.rank != 0:
            for _ in range(self.iterations):
                yield from mpi.call("update_shared", win, data)
        yield from mpi.barrier()
        if mpi.rank == 0:
            expected = self.expected_total(mpi.size)
            assert int(win.buffers[0][0]) == expected, (
                f"lock-protected accumulate lost updates: "
                f"{int(win.buffers[0][0])} != {expected}"
            )
        yield from mpi.win_free(win)
        yield from mpi.finalize()
