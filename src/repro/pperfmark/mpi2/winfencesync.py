"""winfencesync: an artificial straggler at MPI_Win_fence.

PPerfMark MPI-2 (Table 3): rank 0 wastes time before each fence, so all
other ranks wait in ``MPI_Win_fence``.  The PC must find rank 0 CPU-bound
in ``waste_time`` and the others with excessive (active-target) RMA
synchronization waiting time on the window.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ...mpi.datatypes import INT
from ..base import Expectation, PPerfProgram, register

__all__ = ["WinFenceSync"]


@register
class WinFenceSync(PPerfProgram):
    name = "winfencesync"
    module = "winfencesync.c"
    suite = "mpi2"
    default_nprocs = 4
    description = (
        "This program uses MPI_Win_fence for synchronization. An artificial "
        "bottleneck is introduced in rank 0, which makes it late to the "
        "fence operation."
    )
    expectation = Expectation(
        required=(
            ("ExcessiveSyncWaitingTime",),
            ("CPUBound", "waste_time"),
        ),
    )

    def __init__(
        self,
        iterations: int = 700,
        waste_seconds: float = 8e-3,
        count: int = 32,
    ) -> None:
        self.iterations = iterations
        self.waste_seconds = waste_seconds
        self.count = count

    def functions(self):
        return {"waste_time": self._waste, "update_window": self._update}

    def _waste(self, mpi, proc) -> Generator:
        yield from mpi.compute(self.waste_seconds)

    def _update(self, mpi, proc, win, data) -> Generator:
        target = (mpi.rank + 1) % mpi.size
        yield from mpi.put(win, target, data)

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        win = yield from mpi.win_create(self.count, datatype=INT)
        yield from mpi.win_set_name(win, "FenceWindow")
        data = np.full(self.count, mpi.rank, dtype="i4")
        yield from mpi.win_fence(win)
        for _ in range(self.iterations):
            if mpi.rank == 0:
                yield from mpi.call("waste_time")
            yield from mpi.call("update_window", win, data)
            yield from mpi.win_fence(win)
        yield from mpi.win_free(win)
        yield from mpi.finalize()
