"""winscpwsync: start/complete/post/wait with a late target.

PPerfMark MPI-2 (Section 5.2.1.1): generalized active-target
synchronization.  Rank 0 is the target, calling ``waste_time`` between its
successive ``MPI_Win_wait`` and ``MPI_Win_post`` calls; the origin ranks
therefore block in ``MPI_Win_start`` *or* ``MPI_Win_complete`` -- the
MPI-2 standard leaves the choice of blocking routine to the
implementation, and the paper observes exactly this difference between LAM
(start blocks) and MPICH2 (complete blocks), Figure 21.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ...mpi.datatypes import INT
from ..base import Expectation, PPerfProgram, register

__all__ = ["WinScpwSync"]


@register
class WinScpwSync(PPerfProgram):
    name = "winscpwsync"
    module = "winscpwsync.c"
    suite = "mpi2"
    default_nprocs = 4
    description = (
        "This is similar to winfencesync, except that Start/Complete, "
        "Post/Wait synchronization is used."
    )
    expectation = Expectation(
        required=(
            ("ExcessiveSyncWaitingTime",),
            ("CPUBound", "waste_time"),
        ),
    )

    def __init__(
        self,
        iterations: int = 700,
        waste_seconds: float = 8e-3,
        count: int = 32,
    ) -> None:
        self.iterations = iterations
        self.waste_seconds = waste_seconds
        self.count = count

    def functions(self):
        return {"waste_time": self._waste}

    def _waste(self, mpi, proc) -> Generator:
        yield from mpi.compute(self.waste_seconds)

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        win = yield from mpi.win_create(self.count * max(1, mpi.size), datatype=INT)
        yield from mpi.win_set_name(win, "ScpwWindow")
        data = np.full(self.count, mpi.rank, dtype="i4")
        origins = list(range(1, mpi.size))
        if mpi.rank == 0:
            for _ in range(self.iterations):
                yield from mpi.win_post(win, origins)
                yield from mpi.win_wait(win)
                yield from mpi.call("waste_time")
        else:
            for _ in range(self.iterations):
                yield from mpi.win_start(win, [0])
                yield from mpi.put(win, 0, data, target_disp=self.count * mpi.rank)
                yield from mpi.win_complete(win)
        yield from mpi.win_free(win)
        yield from mpi.finalize()
