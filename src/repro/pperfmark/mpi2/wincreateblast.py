"""wincreateblast: create and free many RMA windows very quickly.

PPerfMark MPI-2 (Table 3): the tool must detect every window and
incorporate it into the Resource Hierarchy.  Because the MPI
implementation reuses window identifiers after ``MPI_Win_free``, this
program is the stress test for the paper's composite ``N-M`` unique
identifier (Section 4.2.1): with LAM-style id reuse, ``num_windows``
windows map to a handful of implementation ids but ``num_windows``
distinct resources.
"""

from __future__ import annotations

from typing import Generator

from ...mpi.datatypes import INT
from ..base import Expectation, PPerfProgram, register

__all__ = ["WinCreateBlast"]


@register
class WinCreateBlast(PPerfProgram):
    name = "wincreateblast"
    module = "wincreateblast.c"
    suite = "mpi2"
    default_nprocs = 2
    description = (
        "This program creates and deallocates a large number of RMA windows "
        "very quickly."
    )
    expectation = Expectation()  # verified by hierarchy inspection

    def __init__(self, num_windows: int = 80, live_at_once: int = 2) -> None:
        self.num_windows = num_windows
        self.live_at_once = max(1, live_at_once)

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        live = []
        for i in range(self.num_windows):
            win = yield from mpi.win_create(32, datatype=INT)
            live.append(win)
            if len(live) >= self.live_at_once:
                yield from mpi.win_free(live.pop(0))
        for win in live:
            yield from mpi.win_free(win)
        yield from mpi.finalize()
