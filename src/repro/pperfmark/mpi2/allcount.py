"""allcount: known numbers of Put/Get/Accumulate over a window.

PPerfMark MPI-2 (Table 3): "This program uses a known number of Puts,
Gets, and Accumulates to transfer a known amount of data to and from an
RMA window."  The pass criterion is exact: Paradyn's Table-1 counters must
equal the ground truth the program computes (operation counts and byte
counts).  The data movement is real -- the program asserts the window
contents at the end, so the simulated RMA semantics are validated too.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ...mpi.datatypes import INT, SUM
from ..base import Expectation, PPerfProgram, register

__all__ = ["AllCount"]


@register
class AllCount(PPerfProgram):
    name = "allcount"
    module = "allcount.c"
    suite = "mpi2"
    default_nprocs = 2
    description = (
        "This program uses a known number of Puts, Gets, and Accumulates to "
        "transfer a known amount of data to and from an RMA window."
    )
    expectation = Expectation()  # verified by exact counter comparison

    def __init__(
        self,
        epochs: int = 60,
        puts_per_epoch: int = 5,
        gets_per_epoch: int = 3,
        accs_per_epoch: int = 2,
        count: int = 16,
    ) -> None:
        self.epochs = epochs
        self.puts_per_epoch = puts_per_epoch
        self.gets_per_epoch = gets_per_epoch
        self.accs_per_epoch = accs_per_epoch
        self.count = count
        self.verified = False

    # ground truth ----------------------------------------------------------

    def expected_put_ops(self) -> int:
        return self.epochs * self.puts_per_epoch

    def expected_get_ops(self) -> int:
        return self.epochs * self.gets_per_epoch

    def expected_acc_ops(self) -> int:
        return self.epochs * self.accs_per_epoch

    def expected_put_bytes(self) -> int:
        return self.expected_put_ops() * self.count * INT.size

    def expected_get_bytes(self) -> int:
        return self.expected_get_ops() * self.count * INT.size

    def expected_acc_bytes(self) -> int:
        return self.expected_acc_ops() * self.count * INT.size

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        size = max(self.count * 4, 64)
        win = yield from mpi.win_create(size, datatype=INT)
        yield from mpi.win_set_name(win, "AllCountWindow")
        data = np.arange(self.count, dtype="i4")
        scratch = np.zeros(self.count, dtype="i4")
        yield from mpi.win_fence(win)
        if mpi.rank == 0:
            for _ in range(self.epochs):
                for _ in range(self.puts_per_epoch):
                    yield from mpi.put(win, 1, data, target_disp=0)
                for _ in range(self.gets_per_epoch):
                    yield from mpi.get(win, 1, scratch, target_disp=0)
                for _ in range(self.accs_per_epoch):
                    yield from mpi.accumulate(win, 1, data, target_disp=self.count, op=SUM)
                yield from mpi.win_fence(win)
        else:
            for _ in range(self.epochs):
                yield from mpi.win_fence(win)
        yield from mpi.win_fence(win)
        if mpi.rank == 1:
            expected_acc = data.astype("i8") * self.epochs * self.accs_per_epoch
            window_acc = win.buffers[1][self.count : 2 * self.count].astype("i8")
            assert np.array_equal(win.buffers[1][: self.count], data), "Put data mismatch"
            assert np.array_equal(window_acc, expected_acc), "Accumulate data mismatch"
            self.verified = True
        yield from mpi.win_free(win)
        yield from mpi.finalize()
