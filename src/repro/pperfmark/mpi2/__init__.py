"""PPerfMark MPI-2 programs (Table 3) plus Oned and the passive-target test."""

from .allcount import AllCount
from .dataparallel import SpawnWorkload, SpawnWorkloadWorker
from .oned import Oned
from .spawn_programs import (
    SpawnCount,
    SpawnCountChild,
    SpawnSync,
    SpawnSyncChild,
    SpawnWinSync,
    SpawnWinSyncChild,
)
from .wincreateblast import WinCreateBlast
from .winfencesync import WinFenceSync
from .winlocksync import WinLockSync
from .winscpwsync import WinScpwSync

__all__ = [
    "AllCount",
    "WinCreateBlast",
    "WinFenceSync",
    "WinScpwSync",
    "SpawnCount",
    "SpawnCountChild",
    "SpawnSync",
    "SpawnSyncChild",
    "SpawnWinSync",
    "SpawnWinSyncChild",
    "SpawnWorkload",
    "SpawnWorkloadWorker",
    "WinLockSync",
    "Oned",
]
