"""PPerfMark: the paper's performance-tool benchmark suite (Section 5).

MPI-1 programs derived from the Grindstone test suite (Table 2), the new
MPI-2 programs (Table 3), the sstwod/Oned book examples, and the ASCI
Purple Presta rma stress test.
"""

from .base import Expectation, PPerfProgram, REGISTRY, create, program_names, register
from .mpi1 import (
    BigMessage,
    DiffuseProcedure,
    HotProcedure,
    IntensiveServer,
    RandomBarrier,
    SmallMessages,
    Sstwod,
    SystemTime,
    WrongWay,
)
from .mpi2 import (
    AllCount,
    Oned,
    SpawnCount,
    SpawnSync,
    SpawnWinSync,
    SpawnWorkload,
    SpawnWorkloadWorker,
    WinCreateBlast,
    WinFenceSync,
    WinLockSync,
    WinScpwSync,
)
from .presta import PATTERNS, PrestaResult, PrestaRma

__all__ = [
    "PPerfProgram",
    "Expectation",
    "REGISTRY",
    "register",
    "create",
    "program_names",
    "SmallMessages",
    "BigMessage",
    "WrongWay",
    "IntensiveServer",
    "RandomBarrier",
    "DiffuseProcedure",
    "SystemTime",
    "HotProcedure",
    "Sstwod",
    "AllCount",
    "WinCreateBlast",
    "WinFenceSync",
    "WinScpwSync",
    "SpawnCount",
    "SpawnSync",
    "SpawnWinSync",
    "SpawnWorkload",
    "SpawnWorkloadWorker",
    "WinLockSync",
    "Oned",
    "PrestaRma",
    "PrestaResult",
    "PATTERNS",
]
