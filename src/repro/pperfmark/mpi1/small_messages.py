"""small-messages: many small messages from clients to one server.

Paper parameters (Section 5.1.2): 10,000,000 iterations, 4-byte messages,
6 processes (2 each on 3 nodes), ~515 s under LAM/MPI.  The rank-0 process
is the server; the others are clients that each send ``iterations``
messages.  The known bottleneck is communication: clients spend their time
in ``MPI_Send`` (inside ``Gsend_message``).  Under MPICH ch_p4mpd the PC
additionally reports ``ExcessiveIOBlockingTime`` because the socket-based
transport funnels everything through ``read``/``write``.
"""

from __future__ import annotations

from typing import Generator

from ..base import Expectation, PPerfProgram, register

__all__ = ["SmallMessages"]

MSG_TAG = 7


@register
class SmallMessages(PPerfProgram):
    name = "small_messages"
    module = "small_messages.c"
    suite = "mpi1"
    default_nprocs = 6
    description = (
        "This program sends many small messages between several processes. "
        "The process with rank 0 acts as the server and the other processes "
        "act as clients."
    )
    expectation = Expectation(
        required=(
            ("ExcessiveSyncWaitingTime",),
            ("ExcessiveSyncWaitingTime", "Gsend_message"),
        ),
    )

    def __init__(self, iterations: int = 20_000, msg_bytes: int = 4) -> None:
        self.iterations = iterations
        self.msg_bytes = msg_bytes

    def functions(self):
        return {
            "Gsend_message": self._gsend,
            "Grecv_message": self._grecv,
        }

    def _gsend(self, mpi, proc, dest: int, tag: int) -> Generator:
        yield from mpi.send(dest, nbytes=self.msg_bytes, tag=tag)

    def _grecv(self, mpi, proc, source: int, tag: int) -> Generator:
        return (yield from mpi.recv(source=source, tag=tag, nbytes=self.msg_bytes))

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        nclients = mpi.size - 1
        if mpi.rank == 0:
            for _ in range(self.iterations * nclients):
                yield from mpi.call("Grecv_message", mpi.ANY_SOURCE, MSG_TAG)
        else:
            for _ in range(self.iterations):
                yield from mpi.call("Gsend_message", 0, MSG_TAG)
        yield from mpi.finalize()

    def expected_bytes_at_server(self, nprocs: int) -> int:
        """Ground truth for the Figure 4 byte-count validation."""
        return (nprocs - 1) * self.iterations * self.msg_bytes

    def expected_bytes_per_client(self) -> int:
        return self.iterations * self.msg_bytes
