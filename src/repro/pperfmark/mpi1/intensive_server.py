"""intensive-server: clients waiting on an overloaded server.

Paper parameters (Section 5.1.6): 10,000 iterations, TIMETOWASTE=1,
6 processes (2 each on 3 nodes).  Rank 0 is the server; each client
repeatedly sends a request and waits for the reply, while the server
wastes time before replying.  The PC finds clients' excessive
synchronization waiting time in ``MPI_Recv`` under ``Grecv_message`` and
``CPUBound`` true (the server); the paper notes the CPU root was not
refined further in their run.
"""

from __future__ import annotations

from typing import Generator

from ...mpi.status import Status
from ..base import Expectation, PPerfProgram, register

__all__ = ["IntensiveServer"]

REQUEST_TAG = 1
REPLY_TAG = 2


@register
class IntensiveServer(PPerfProgram):
    name = "intensive_server"
    module = "intensive_server.c"
    suite = "mpi1"
    default_nprocs = 6
    description = (
        "This program simulates an overloaded server. The process with rank "
        "0 acts as the server and the other processes are the clients. Each "
        "of the clients repeatedly sends a message to the server and then "
        "waits for a reply. The server wastes time before replying, "
        "simulating a busy server."
    )
    expectation = Expectation(
        required=(
            ("ExcessiveSyncWaitingTime",),
            ("ExcessiveSyncWaitingTime", "Grecv_message"),
            ("CPUBound",),
        ),
    )

    def __init__(
        self,
        iterations: int = 900,
        time_to_waste: float = 1.0,
        waste_unit: float = 1.2e-3,
        msg_bytes: int = 4,
    ) -> None:
        self.iterations = iterations
        self.time_to_waste = time_to_waste
        self.waste_unit = waste_unit
        self.msg_bytes = msg_bytes

    def functions(self):
        return {
            "Gsend_message": self._gsend,
            "Grecv_message": self._grecv,
            "waste_time": self._waste,
        }

    def _gsend(self, mpi, proc, dest: int, tag: int) -> Generator:
        yield from mpi.send(dest, nbytes=self.msg_bytes, tag=tag)

    def _grecv(self, mpi, proc, source: int, tag: int, status=None) -> Generator:
        return (
            yield from mpi.recv(source=source, tag=tag, nbytes=self.msg_bytes, status=status)
        )

    def _waste(self, mpi, proc) -> Generator:
        yield from mpi.compute(self.time_to_waste * self.waste_unit)

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        nclients = mpi.size - 1
        if mpi.rank == 0:
            for _ in range(self.iterations * nclients):
                status = Status()
                yield from mpi.call("Grecv_message", mpi.ANY_SOURCE, REQUEST_TAG, status)
                yield from mpi.call("waste_time")
                yield from mpi.call("Gsend_message", status.source, REPLY_TAG)
        else:
            for _ in range(self.iterations):
                yield from mpi.call("Gsend_message", 0, REQUEST_TAG)
                yield from mpi.call("Grecv_message", 0, REPLY_TAG)
        yield from mpi.finalize()
