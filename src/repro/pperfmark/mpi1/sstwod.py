"""sstwod: the 2-D Poisson example from "Using MPI" (Gropp/Lusk/Skjellum).

The paper's final MPI-1 test (Section 5.1.10).  A Jacobi sweep over a 2-D
domain decomposition: each iteration exchanges ghost cells with the four
neighbours in ``exchng2`` (via ``MPI_Sendrecv``) and reduces the residual
with ``MPI_Allreduce``.  The book uses ``exchng2`` as its communication
tuning lesson; the PC finds ``ExcessiveSyncWaitingTime`` in
``MPI_Sendrecv`` and ``MPI_Allreduce``.

This version really solves the Poisson iteration on numpy blocks, with a
per-rank compute skew so the sendrecv/allreduce waits are genuine.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ..base import Expectation, PPerfProgram, register

__all__ = ["Sstwod"]

TAG_X = 21
TAG_Y = 22


@register
class Sstwod(PPerfProgram):
    name = "sstwod"
    module = "sstwod.c"
    suite = "mpi1"
    default_nprocs = 4
    description = (
        "2-D Poisson solver from 'Using MPI'; known communication "
        "bottleneck in the function exchng2."
    )
    expectation = Expectation(
        required=(
            ("ExcessiveSyncWaitingTime",),
            ("ExcessiveSyncWaitingTime", "exchng2"),
        ),
    )

    def __init__(
        self,
        iterations: int = 3200,
        local_n: int = 512,
        compute_seconds: float = 0.4e-3,
        jitter: float = 0.4,
    ) -> None:
        self.iterations = iterations
        self.local_n = local_n
        self.compute_seconds = compute_seconds
        #: per-(rank, iteration) load factor range [0.5, 0.5 + jitter): the
        #: slowest rank changes every sweep, so every rank waits sometimes
        #: and none is individually CPU-bound -- communication is the
        #: bottleneck, as in the book's tuning lesson.
        self.jitter = jitter

    def functions(self):
        return {"exchng2": self._exchng2, "sweep2d": self._sweep}

    def _grid_shape(self, nprocs: int) -> tuple[int, int]:
        px = int(np.sqrt(nprocs))
        while nprocs % px:
            px -= 1
        return px, nprocs // px

    def _exchng2(self, mpi, proc, px: int, py: int) -> Generator:
        """Ghost exchange with up/down/left/right neighbours (torus)."""
        rank = mpi.rank
        x, y = rank % px, rank // px
        nbytes = self.local_n * 8
        up = x + ((y + 1) % py) * px
        down = x + ((y - 1) % py) * px
        right = (x + 1) % px + y * px
        left = (x - 1) % px + y * px
        yield from mpi.sendrecv(up, down, send_nbytes=nbytes, recv_nbytes=nbytes, sendtag=TAG_Y, recvtag=TAG_Y)
        yield from mpi.sendrecv(down, up, send_nbytes=nbytes, recv_nbytes=nbytes, sendtag=TAG_Y, recvtag=TAG_Y)
        if px > 1:
            yield from mpi.sendrecv(right, left, send_nbytes=nbytes, recv_nbytes=nbytes, sendtag=TAG_X, recvtag=TAG_X)
            yield from mpi.sendrecv(left, right, send_nbytes=nbytes, recv_nbytes=nbytes, sendtag=TAG_X, recvtag=TAG_X)

    def _sweep(self, mpi, proc, grid: np.ndarray, iteration: int) -> Generator:
        """One Jacobi relaxation sweep (real arithmetic, simulated time)."""
        draw = self.deterministic_choice("load", iteration * mpi.size + mpi.rank, 1000)
        factor = 0.5 + self.jitter * draw / 1000.0
        yield from mpi.compute(self.compute_seconds * factor)
        grid[1:-1, 1:-1] = 0.25 * (
            grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
        )
        return float(np.abs(grid).max())

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        px, py = self._grid_shape(mpi.size)
        rng = np.random.default_rng(42 + mpi.rank)
        grid = rng.random((self.local_n + 2, self.local_n + 2))
        for iteration in range(self.iterations):
            yield from mpi.call("exchng2", px, py)
            diff = yield from mpi.call("sweep2d", grid, iteration)
            yield from mpi.allreduce(diff, nbytes=8)
        yield from mpi.finalize()
