"""big-message: very large messages between two processes.

Paper parameters (Section 5.1.3): 1000 iterations, 100,000-element
messages (400 KB), 2 processes on 2 nodes; each process sent and received
400 MB total in ~68.6 s.  The bottleneck is the overhead of setting up and
sending very large messages (rendezvous protocol); the PC finds
``ExcessiveSyncWaitingTime`` in both ``MPI_Send`` and ``MPI_Recv`` under
``Gsend_message``/``Grecv_message`` for both implementations.
"""

from __future__ import annotations

from typing import Generator

from ..base import Expectation, PPerfProgram, register

__all__ = ["BigMessage"]

MSG_TAG = 11


@register
class BigMessage(PPerfProgram):
    name = "big_message"
    module = "big_message.c"
    suite = "mpi1"
    default_nprocs = 2
    procs_per_node = 1
    description = (
        "This program sends very large messages between two processes. The "
        "bottleneck is the overhead associated with setting up and sending "
        "a very large message."
    )
    expectation = Expectation(
        required=(
            ("ExcessiveSyncWaitingTime",),
            ("ExcessiveSyncWaitingTime", "Gsend_message"),
            ("ExcessiveSyncWaitingTime", "Grecv_message"),
        ),
    )

    def __init__(self, iterations: int = 250, msg_bytes: int = 400_000) -> None:
        self.iterations = iterations
        self.msg_bytes = msg_bytes

    def functions(self):
        return {
            "Gsend_message": self._gsend,
            "Grecv_message": self._grecv,
        }

    def _gsend(self, mpi, proc, dest: int) -> Generator:
        yield from mpi.send(dest, nbytes=self.msg_bytes, tag=MSG_TAG)

    def _grecv(self, mpi, proc, source: int) -> Generator:
        return (yield from mpi.recv(source=source, tag=MSG_TAG, nbytes=self.msg_bytes))

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        peer = 1 - mpi.rank
        for _ in range(self.iterations):
            if mpi.rank == 0:
                yield from mpi.call("Gsend_message", peer)
                yield from mpi.call("Grecv_message", peer)
            else:
                yield from mpi.call("Grecv_message", peer)
                yield from mpi.call("Gsend_message", peer)
        yield from mpi.finalize()

    def expected_bytes_per_process(self) -> int:
        """Each process both sends and receives this many bytes (Figure 6)."""
        return self.iterations * self.msg_bytes
