"""hot-procedure: a computational bottleneck in one procedure.

Paper parameters (Section 5.1.9): 1,000,000 iterations, 4 processes (2
each on 2 nodes).  ``bottleneckProcedure`` consumes essentially all of the
program's time; the ``irrelevantProcedure``s are called equally often but
use none of it (Figure 19's gprof profile).  The PC finds ``CPUBound``
true and drills to ``bottleneckProcedure``.
"""

from __future__ import annotations

from typing import Generator

from ..base import Expectation, PPerfProgram, register

__all__ = ["HotProcedure"]


@register
class HotProcedure(PPerfProgram):
    name = "hot_procedure"
    module = "hot_procedure.c"
    suite = "mpi1"
    default_nprocs = 4
    description = (
        "This program has a bottleneck in a single procedure, called "
        "bottleneckProcedure, that uses most of the program's time. There "
        "are also several irrelevantProcedures that use hardly any of the "
        "program's time."
    )
    expectation = Expectation(
        required=(
            ("CPUBound",),
            ("CPUBound", "bottleneckProcedure"),
        ),
        forbidden=(
            ("CPUBound", "irrelevantProcedure"),
        ),
    )

    def __init__(
        self,
        iterations: int = 1500,
        bottleneck_seconds: float = 5e-3,
        irrelevant_seconds: float = 0.0,
        num_irrelevant: int = 13,
    ) -> None:
        self.iterations = iterations
        self.bottleneck_seconds = bottleneck_seconds
        self.irrelevant_seconds = irrelevant_seconds
        self.num_irrelevant = num_irrelevant

    def functions(self):
        fns = {"bottleneckProcedure": self._bottleneck}
        for i in range(self.num_irrelevant):
            fns[f"irrelevantProcedure{i}"] = self._irrelevant
        return fns

    def _bottleneck(self, mpi, proc) -> Generator:
        yield from mpi.compute(self.bottleneck_seconds)

    def _irrelevant(self, mpi, proc) -> Generator:
        yield from mpi.compute(self.irrelevant_seconds)

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        for _ in range(self.iterations):
            yield from mpi.call("bottleneckProcedure")
            for i in range(self.num_irrelevant):
                yield from mpi.call(f"irrelevantProcedure{i}")
        yield from mpi.finalize()
