"""PPerfMark MPI-1 programs (Grindstone-derived, Table 2) plus sstwod."""

from .big_message import BigMessage
from .diffuse_procedure import DiffuseProcedure
from .hot_procedure import HotProcedure
from .intensive_server import IntensiveServer
from .random_barrier import RandomBarrier
from .small_messages import SmallMessages
from .sstwod import Sstwod
from .system_time import SystemTime
from .wrong_way import WrongWay

__all__ = [
    "SmallMessages",
    "BigMessage",
    "WrongWay",
    "IntensiveServer",
    "RandomBarrier",
    "DiffuseProcedure",
    "SystemTime",
    "HotProcedure",
    "Sstwod",
]
