"""wrong-way: messages received in a different order than they were sent.

Paper parameters (Section 5.1.4): 18,000 iterations of 1000 messages;
72 MB total in ~74.6 s.  Process 1 sends a batch of messages with
*descending* tags; process 0 receives them in *ascending* tag order, so
every batch stalls the receiver until the batch's last message arrives and
forces matching out of the unexpected queue.  The PC finds
``ExcessiveSyncWaitingTime`` in ``Gsend_message``/``Grecv_message``
(``MPI_Send``/``MPI_Recv``) for both implementations.
"""

from __future__ import annotations

from typing import Generator

from ..base import Expectation, PPerfProgram, register

__all__ = ["WrongWay"]


@register
class WrongWay(PPerfProgram):
    name = "wrong_way"
    module = "wrong_way.c"
    suite = "mpi1"
    default_nprocs = 2
    procs_per_node = 1
    description = (
        "This program simulates the problem where one process expects to "
        "receive messages in a certain order, but another process sends them "
        "in a different order than is expected."
    )
    expectation = Expectation(
        required=(
            ("ExcessiveSyncWaitingTime",),
            ("ExcessiveSyncWaitingTime", "Grecv_message"),
        ),
    )

    def __init__(self, iterations: int = 500, batch: int = 100, msg_bytes: int = 4) -> None:
        self.iterations = iterations
        self.batch = batch
        self.msg_bytes = msg_bytes

    def functions(self):
        return {
            "Gsend_message": self._gsend,
            "Grecv_message": self._grecv,
        }

    def _gsend(self, mpi, proc, dest: int, tag: int) -> Generator:
        yield from mpi.send(dest, nbytes=self.msg_bytes, tag=tag)

    def _grecv(self, mpi, proc, source: int, tag: int) -> Generator:
        return (yield from mpi.recv(source=source, tag=tag, nbytes=self.msg_bytes))

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        if mpi.rank == 1:
            for _ in range(self.iterations):
                for tag in reversed(range(self.batch)):  # the wrong way
                    yield from mpi.call("Gsend_message", 0, tag)
        elif mpi.rank == 0:
            for _ in range(self.iterations):
                for tag in range(self.batch):  # the expected order
                    yield from mpi.call("Grecv_message", 1, tag)
        yield from mpi.finalize()

    def expected_total_bytes(self) -> int:
        """Total bytes sent == received (Figure 8)."""
        return self.iterations * self.batch * self.msg_bytes
