"""system-time: a program whose time goes to system calls.

Paper parameters (Section 5.1.8): 10,000 iterations, 4 processes (2 each
on 2 nodes).  The program spends most of its time executing in system
calls.  **Paradyn fails this test** -- its default metrics measure user CPU
only, so the Performance Consultant reports every top-level hypothesis
false -- and this reproduction preserves the failure (the ``system_time``
extension metric that would fix it exists but is not in the default set).
"""

from __future__ import annotations

from typing import Generator

from ..base import Expectation, PPerfProgram, register

__all__ = ["SystemTime"]


@register
class SystemTime(PPerfProgram):
    name = "system_time"
    module = "system_time.c"
    suite = "mpi1"
    default_nprocs = 4
    description = "This program spends most of its time executing in system calls."
    expectation = Expectation(all_false=True)

    def __init__(
        self,
        iterations: int = 1200,
        syscall_seconds: float = 5e-3,
        barrier_every: int = 200,
    ) -> None:
        self.iterations = iterations
        self.syscall_seconds = syscall_seconds
        self.barrier_every = barrier_every

    def functions(self):
        return {"do_system_work": self._system_work}

    def _system_work(self, mpi, proc) -> Generator:
        yield from mpi.system_work(self.syscall_seconds)

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        for iteration in range(self.iterations):
            yield from mpi.call("do_system_work")
            if self.barrier_every and (iteration + 1) % self.barrier_every == 0:
                yield from mpi.barrier()
        yield from mpi.finalize()
