"""random-barrier: a load imbalance that moves between processes.

Paper parameters (Section 5.1.5): 800 iterations, TIMETOWASTE=5,
6 processes (2 each on 3 nodes).  Each iteration a pseudo-randomly chosen
rank wastes time while the others wait in ``MPI_Barrier``.  The PC finds
``ExcessiveSyncWaitingTime`` in ``MPI_Barrier`` and ``CPUBound`` in
``waste_time`` (though, as the paper notes, not every process tests true
in ``waste_time`` -- it depends on who was wasting while the PC measured).
The paper measured ~61% (LAM) / 62% (MPICH) average inclusive
synchronization time (Figure 18); the defaults below are calibrated to the
same fraction: (5/6 * w) / (b + w) with w = 5 units, b = 1.83 units.
"""

from __future__ import annotations

from typing import Generator

from ..base import Expectation, PPerfProgram, register

__all__ = ["RandomBarrier"]


@register
class RandomBarrier(PPerfProgram):
    name = "random_barrier"
    module = "random_barrier.c"
    suite = "mpi1"
    default_nprocs = 6
    description = (
        "This program is like the intensive-server program except that no "
        "one process is the bottleneck. On each iteration through a loop a "
        "random process is chosen to waste time while the other processes "
        "wait in MPI_Barrier."
    )
    expectation = Expectation(
        required=(
            ("ExcessiveSyncWaitingTime",),
            ("ExcessiveSyncWaitingTime", "Barrier"),
            ("CPUBound",),
        ),
    )

    def __init__(
        self,
        iterations: int = 60,
        time_to_waste: float = 5.0,
        waste_unit: float = 80e-3,
        base_work_units: float = 1.83,
    ) -> None:
        # waste_unit is scaled so one waste period (0.4 s) spans a good part
        # of a PC experiment window: whether a process tests CPUBound in
        # waste_time then depends on whether it happened to be the waster
        # while measured -- the paper's observation in Section 5.1.5.
        self.iterations = iterations
        self.time_to_waste = time_to_waste
        self.waste_unit = waste_unit
        self.base_work_units = base_work_units

    def functions(self):
        return {"waste_time": self._waste, "do_work": self._work}

    def _waste(self, mpi, proc) -> Generator:
        yield from mpi.compute(self.time_to_waste * self.waste_unit)

    def _work(self, mpi, proc) -> Generator:
        yield from mpi.compute(self.base_work_units * self.waste_unit)

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        n = mpi.size
        for iteration in range(self.iterations):
            yield from mpi.call("do_work")
            if self.deterministic_choice("waster", iteration, n) == mpi.rank:
                yield from mpi.call("waste_time")
            yield from mpi.barrier()
        yield from mpi.finalize()

    def expected_sync_fraction(self, nprocs: int) -> float:
        """The analytic average inclusive-sync fraction (paper: ~0.61)."""
        w = self.time_to_waste
        b = self.base_work_units
        return ((nprocs - 1) / nprocs) * w / (b + w)
