"""diffuse-procedure: a bottleneck distributed over all processes.

Paper parameters (Section 5.1.7): 2000 iterations, 4 processes (2 each on
2 nodes).  ``bottleneckProcedure`` consumes the majority of the program's
time, but the processes *take turns* running it while the rest wait in
``MPI_Barrier`` -- so each process spends only ~25% of its time there
(about one CPU's worth across 4 processes, Figure 15).  With the default
CPU threshold (0.3) the PC misses the computational bottleneck; lowering
the threshold to 0.2 (or running with 2 processes, where the share is
~50%) finds it -- exactly the paper's observation.
"""

from __future__ import annotations

from typing import Generator

from ..base import Expectation, PPerfProgram, register

__all__ = ["DiffuseProcedure"]


@register
class DiffuseProcedure(PPerfProgram):
    name = "diffuse_procedure"
    module = "diffuse_procedure.c"
    suite = "mpi1"
    default_nprocs = 4
    description = (
        "This program demonstrates a bottleneck that is distributed over "
        "the processes in the MPI application. The bottleneckProcedure "
        "consumes the majority of the time for the application. Each of the "
        "processes in the application take turns being the bottleneck while "
        "the others wait in MPI_Barrier."
    )
    expectation = Expectation(
        required=(
            ("ExcessiveSyncWaitingTime",),
            ("ExcessiveSyncWaitingTime", "Barrier"),
            ("CPUBound", "bottleneckProcedure"),  # with threshold 0.2
        ),
    )

    def __init__(
        self,
        iterations: int = 800,
        bottleneck_seconds: float = 8e-3,
        irrelevant_seconds: float = 2e-5,
        num_irrelevant: int = 5,
    ) -> None:
        self.iterations = iterations
        self.bottleneck_seconds = bottleneck_seconds
        self.irrelevant_seconds = irrelevant_seconds
        self.num_irrelevant = num_irrelevant

    def functions(self):
        fns = {"bottleneckProcedure": self._bottleneck}
        for i in range(self.num_irrelevant):
            fns[f"irrelevantProcedure{i}"] = self._irrelevant
        return fns

    def _bottleneck(self, mpi, proc) -> Generator:
        yield from mpi.compute(self.bottleneck_seconds)

    def _irrelevant(self, mpi, proc) -> Generator:
        yield from mpi.compute(self.irrelevant_seconds)

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        n = mpi.size
        for iteration in range(self.iterations):
            if iteration % n == mpi.rank:
                yield from mpi.call("bottleneckProcedure")
            for i in range(self.num_irrelevant):
                yield from mpi.call(f"irrelevantProcedure{i}")
            yield from mpi.barrier()
        yield from mpi.finalize()

    def expected_cpu_share(self, nprocs: int) -> float:
        """Per-process bottleneckProcedure CPU fraction (paper: ~0.25 at 4
        processes, ~0.5 at 2)."""
        return 1.0 / nprocs
