"""The ASCI Purple Presta stress-test ``rma`` benchmark (Section 5.2.1.3).

Presta's ``rma`` measures the throughput of ``MPI_Put``/``MPI_Get`` and
the per-operation time for four patterns: unidirectional Put,
unidirectional Get, bidirectional Put, bidirectional Get.  The paper ran
it with two processes, 1024-byte operations, 3000 operations per epoch and
200 epochs, then compared the benchmark's *own* measurements against
Paradyn's ``rma_{put,get}_{ops,bytes}`` histograms (integrated back to
totals with the end-point bins dropped).

This module provides the benchmark program plus its self-measurement
results, so the harness can redo the paper's statistical comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

import numpy as np

from ..mpi.datatypes import INT
from .base import Expectation, PPerfProgram, register

__all__ = ["PrestaRma", "PrestaResult", "PATTERNS"]

PATTERNS = ("uni_put", "uni_get", "bi_put", "bi_get")


@dataclass
class PrestaResult:
    """What the rma benchmark itself reports for one pattern."""

    pattern: str
    operations: int
    bytes_total: int
    elapsed: float

    @property
    def throughput(self) -> float:
        """Bytes per second."""
        return self.bytes_total / self.elapsed if self.elapsed else 0.0

    @property
    def per_op_time(self) -> float:
        return self.elapsed / self.operations if self.operations else 0.0


@register
class PrestaRma(PPerfProgram):
    name = "presta_rma"
    module = "rma.c"
    suite = "mpi2"
    default_nprocs = 2
    procs_per_node = 1
    description = (
        "ASCI Purple Presta stress-test rma benchmark: unidirectional and "
        "bidirectional MPI_Put/MPI_Get throughput and per-operation time."
    )
    expectation = Expectation()

    def __init__(
        self,
        op_bytes: int = 1024,
        ops_per_epoch: int = 300,
        epochs: int = 20,
        patterns: tuple[str, ...] = PATTERNS,
        jitter: float = 0.08,
    ) -> None:
        self.op_bytes = op_bytes
        self.ops_per_epoch = ops_per_epoch
        self.epochs = epochs
        #: relative per-operation timing noise (OS scheduling, cache state);
        #: gives the paper's paired significance analysis real variance
        self.jitter = jitter
        self.patterns = tuple(patterns)
        for pattern in self.patterns:
            if pattern not in PATTERNS:
                raise ValueError(f"unknown Presta pattern {pattern!r}")
        #: filled by rank 0 at the end of each pattern
        self.results: dict[str, PrestaResult] = {}

    def expected_ops(self, pattern: str, rank: int) -> int:
        """Ground truth operation count issued by ``rank`` for a pattern."""
        if pattern.startswith("uni") and rank != 0:
            return 0
        return self.ops_per_epoch * self.epochs

    def expected_bytes(self, pattern: str, rank: int) -> int:
        return self.expected_ops(pattern, rank) * self.op_bytes

    def _run_pattern(self, mpi, win, pattern: str, data, scratch) -> Generator:
        rank = mpi.rank
        active = rank == 0 if pattern.startswith("uni") else True
        kind = pattern.split("_")[1]
        target = 1 - rank
        kernel = mpi.proc.kernel
        rng = mpi.ep.world.universe.rng
        stream = f"presta.{pattern}.{rank}"
        yield from mpi.barrier()
        start = kernel.now
        for _ in range(self.epochs):
            if active:
                for _ in range(self.ops_per_epoch):
                    if self.jitter:
                        yield from mpi.compute(rng.jitter(stream, 1.5e-6, self.jitter))
                    if kind == "put":
                        yield from mpi.put(win, target, data)
                    else:
                        yield from mpi.get(win, target, scratch)
            yield from mpi.win_fence(win)
        yield from mpi.barrier()
        elapsed = kernel.now - start
        if rank == 0:
            ops = self.ops_per_epoch * self.epochs
            self.results[pattern] = PrestaResult(
                pattern=pattern,
                operations=ops,
                bytes_total=ops * self.op_bytes,
                elapsed=elapsed,
            )

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        count = self.op_bytes // INT.size
        win = yield from mpi.win_create(count, datatype=INT)
        yield from mpi.win_set_name(win, "PrestaWindow")
        data = np.arange(count, dtype="i4")
        scratch = np.zeros(count, dtype="i4")
        yield from mpi.win_fence(win)
        for pattern in self.patterns:
            yield from self._run_pattern(mpi, win, pattern, data, scratch)
        yield from mpi.win_free(win)
        yield from mpi.finalize()
