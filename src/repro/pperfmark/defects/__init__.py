"""Seeded-defect programs: the sanitizer's regression fixtures.

Each program here is a deliberately broken MPI application that triggers
exactly one detector class in :mod:`repro.sanitizer` -- the dynamic-checker
equivalent of PPerfMark's "known bottleneck" contract.  They live in their
own registry (``DEFECT_REGISTRY``) so the clean PPerfMark suite, the
verification tables, and the benchmarks never see them.
"""

from __future__ import annotations

from typing import Generator, Type

import numpy as np

from ...mpi.datatypes import DOUBLE, INT
from ...mpi.world import MpiProgram
# FindingKind here is pure *expectation metadata* (which finding a sanitize
# run of each defect must report); defect program behavior never reads it,
# so tool-mode artifacts are unaffected by sanitizer edits.
from ...sanitizer.findings import FindingKind  # mode-salt: sanitize
from ..base import PPerfProgram
from ..mpi2.dataparallel import SpawnWorkload

__all__ = ["DefectProgram", "DEFECT_REGISTRY", "register_defect", "defect_names"]


class DefectProgram(PPerfProgram):
    """Base class: a broken program plus the finding(s) it must trigger."""

    suite = "defect"
    default_nprocs = 2
    #: the primary FindingKind a sanitized run must report
    expected_finding: FindingKind = FindingKind.MPI_ERROR
    #: every FindingKind the run must report, no more, no less -- defaults
    #: to just ``expected_finding``; multi-defect programs override it
    expected_findings: tuple[FindingKind, ...] | None = None
    #: personality the defect needs (None = any; e.g. passive-target RMA
    #: defects need "refmpi", the only personality with that feature)
    required_impl: str | None = None

    @classmethod
    def expected_kinds(cls) -> frozenset[FindingKind]:
        if cls.expected_findings is not None:
            return frozenset(cls.expected_findings)
        return frozenset((cls.expected_finding,))


DEFECT_REGISTRY: dict[str, Type[DefectProgram]] = {}


def register_defect(cls: Type[DefectProgram]) -> Type[DefectProgram]:
    if cls.name in DEFECT_REGISTRY:
        raise ValueError(f"duplicate defect program {cls.name!r}")
    DEFECT_REGISTRY[cls.name] = cls
    return cls


def defect_names() -> list[str]:
    return sorted(DEFECT_REGISTRY)


@register_defect
class DefectEpochPut(DefectProgram):
    """Put issued before the first fence ever opens an access epoch."""

    name = "defect_epoch_put"
    module = "defect_epoch_put.c"
    expected_finding = FindingKind.RMA_EPOCH_VIOLATION

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        win = yield from mpi.win_create(16, datatype=INT)
        if mpi.rank == 0:
            # no MPI_Win_fence has run: strictly, no access epoch is open
            yield from mpi.put(win, 1, np.arange(4, dtype="i4"))
        yield from mpi.win_free(win)
        yield from mpi.finalize()


@register_defect
class DefectRmaRace(DefectProgram):
    """Two origins put to the same window range in one fence epoch."""

    name = "defect_rma_race"
    module = "defect_rma_race.c"
    expected_finding = FindingKind.RMA_RACE
    default_nprocs = 3

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        win = yield from mpi.win_create(16, datatype=INT)
        yield from mpi.win_fence(win)
        if mpi.rank in (1, 2):
            yield from mpi.put(win, 0, np.full(8, mpi.rank, dtype="i4"))
        yield from mpi.win_fence(win)
        yield from mpi.win_free(win)
        yield from mpi.finalize()


@register_defect
class DefectDeadlockRecv(DefectProgram):
    """Head-to-head blocking receives: the classic send/recv order bug."""

    name = "defect_deadlock_recv"
    module = "defect_deadlock_recv.c"
    expected_finding = FindingKind.DEADLOCK

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        other = 1 - mpi.rank
        yield from mpi.recv(other, tag=7, nbytes=4)
        yield from mpi.send(other, tag=7, nbytes=4)
        yield from mpi.finalize()


@register_defect
class DefectUnmatchedSend(DefectProgram):
    """An eager send whose receive was never posted."""

    name = "defect_unmatched_send"
    module = "defect_unmatched_send.c"
    expected_finding = FindingKind.UNMATCHED_SEND

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        if mpi.rank == 0:
            yield from mpi.send(1, tag=11, nbytes=4)
        yield from mpi.finalize()


@register_defect
class DefectWindowLeak(DefectProgram):
    """A window still allocated at finalize (missing MPI_Win_free)."""

    name = "defect_window_leak"
    module = "defect_window_leak.c"
    expected_finding = FindingKind.WINDOW_LEAK

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        yield from mpi.win_create(16, datatype=INT)
        yield from mpi.finalize()


@register_defect
class DefectRequestLeak(DefectProgram):
    """An isend whose request is never waited on or tested."""

    name = "defect_request_leak"
    module = "defect_request_leak.c"
    expected_finding = FindingKind.REQUEST_LEAK

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        if mpi.rank == 0:
            yield from mpi.isend(1, tag=3, nbytes=4)  # request dropped
        else:
            yield from mpi.recv(0, tag=3, nbytes=4)
        yield from mpi.finalize()


@register_defect
class DefectRecvTruncation(DefectProgram):
    """A receive buffer smaller than the matched message."""

    name = "defect_recv_truncation"
    module = "defect_recv_truncation.c"
    expected_finding = FindingKind.RECV_TRUNCATION

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        if mpi.rank == 0:
            yield from mpi.send(1, tag=5, nbytes=64)
        else:
            yield from mpi.recv(0, tag=5, nbytes=16)
        yield from mpi.finalize()


@register_defect
class DefectDatatypeMismatch(DefectProgram):
    """Sender and receiver disagree on the type signature (same bytes)."""

    name = "defect_datatype_mismatch"
    module = "defect_datatype_mismatch.c"
    expected_finding = FindingKind.DATATYPE_MISMATCH

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        if mpi.rank == 0:
            yield from mpi.send(1, tag=9, nbytes=8, datatype=INT)
        else:
            yield from mpi.recv(0, tag=9, nbytes=8, datatype=DOUBLE)
        yield from mpi.finalize()


@register_defect
class DefectUseAfterFree(DefectProgram):
    """Synchronizing on a freed window whose id has been reused.

    Under LAM (which recycles window ids, Section 4.2.1 of the paper) the
    second ``win_create`` takes over the freed window's id, so a stale
    handle is the exact hazard the tool's composite ``N-M`` window
    identifiers exist to disambiguate.
    """

    name = "defect_use_after_free"
    module = "defect_use_after_free.c"
    expected_finding = FindingKind.WINDOW_USE_AFTER_FREE

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        win_a = yield from mpi.win_create(8, datatype=INT)
        yield from mpi.win_fence(win_a)
        yield from mpi.win_free(win_a)
        yield from mpi.win_create(8, datatype=INT)  # may reuse win_a's id
        if mpi.rank == 0:
            yield from mpi.win_fence(win_a)  # stale handle
        yield from mpi.finalize()


@register_defect
class DefectTruncationRmaRace(DefectProgram):
    """Two unrelated defects in one program: a truncated receive on the
    point-to-point path *and* an RMA fence-epoch race.

    This is the cross-contamination fixture: one sanitized run must report
    **both** findings -- exactly ``{RECV_TRUNCATION, RMA_RACE}`` -- with
    neither detector masking, duplicating, or mislabeling the other.
    """

    name = "defect_truncation_rma_race"
    module = "defect_truncation_rma_race.c"
    expected_finding = FindingKind.RECV_TRUNCATION
    expected_findings = (FindingKind.RECV_TRUNCATION, FindingKind.RMA_RACE)
    default_nprocs = 3

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        # defect 1: rank 0's 64-byte message lands in rank 1's 16-byte buffer
        if mpi.rank == 0:
            yield from mpi.send(1, tag=5, nbytes=64)
        elif mpi.rank == 1:
            yield from mpi.recv(0, tag=5, nbytes=16)
        # defect 2: ranks 1 and 2 put to the same window range in one epoch
        win = yield from mpi.win_create(16, datatype=INT)
        yield from mpi.win_fence(win)
        if mpi.rank in (1, 2):
            yield from mpi.put(win, 0, np.full(8, mpi.rank, dtype="i4"))
        yield from mpi.win_fence(win)
        yield from mpi.win_free(win)
        yield from mpi.finalize()


@register_defect
class DefectLeakDeadlock(DefectProgram):
    """Two unrelated defects in one program: a leaked isend request on a
    rank that reaches MPI_Finalize, plus a head-to-head receive deadlock
    between two other ranks.

    The cross-contamination fixture for the deadlock path: the run must
    report exactly ``{REQUEST_LEAK, DEADLOCK}``.  The leak belongs to rank
    2, which *entered* the collective MPI_Finalize before the deadlock hit
    -- finalize-entry tracking is what keeps the deadlock from masking it
    -- while the blocked ranks' pending receives must surface only in the
    deadlock diagnosis, never as leaks of their own.
    """

    name = "defect_leak_deadlock"
    module = "defect_leak_deadlock.c"
    expected_finding = FindingKind.REQUEST_LEAK
    expected_findings = (FindingKind.REQUEST_LEAK, FindingKind.DEADLOCK)
    default_nprocs = 3

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        # defect 1: rank 2's isend completes (rank 1 receives it) but the
        # request is dropped on the floor; rank 2 then enters finalize
        if mpi.rank == 2:
            yield from mpi.isend(1, tag=13, nbytes=4)  # request dropped
        elif mpi.rank == 1:
            yield from mpi.recv(2, tag=13, nbytes=4)
        # defect 2: ranks 0 and 1 post head-to-head blocking receives
        if mpi.rank == 0:
            yield from mpi.recv(1, tag=7, nbytes=4)
            yield from mpi.send(1, tag=7, nbytes=4)
        elif mpi.rank == 1:
            yield from mpi.recv(0, tag=7, nbytes=4)
            yield from mpi.send(0, tag=7, nbytes=4)
        yield from mpi.finalize()


@register_defect
class DefectSharedLockRace(DefectProgram):
    """Conflicting puts under overlapping MPI_LOCK_SHARED epochs.

    A shared lock admits several holders at once, so two origins that both
    take it and put to the same window range are unordered -- the epochs
    give no happens-before edge the way consecutive exclusive epochs do.
    Passive-target locks exist only on the ``refmpi`` personality.
    """

    name = "defect_shared_lock_race"
    module = "defect_shared_lock_race.c"
    expected_finding = FindingKind.RMA_RACE
    default_nprocs = 3
    required_impl = "refmpi"

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        win = yield from mpi.win_create(16, datatype=INT)
        if mpi.rank in (1, 2):
            yield from mpi.win_lock(win, 0, lock_type="shared")
            yield from mpi.put(win, 0, np.full(8, mpi.rank, dtype="i4"))
            yield from mpi.win_unlock(win, 0)
        yield from mpi.barrier()
        yield from mpi.win_free(win)
        yield from mpi.finalize()


@register_defect
class DefectProbeGatherTruncation(DefectProgram, SpawnWorkload):
    """The data-parallel workload with undersized probe-gather buffers.

    The master posts receive buffers half the size of the workers' probe
    messages (a real nengo-mpi hazard: the probe buffer is sized from the
    *local* model build, the message from the worker's): every probe
    gather trips the truncation detector.  Everything else -- spawn,
    distribution, stepping, disconnect -- is the clean workload, so the
    run must report ``{RECV_TRUNCATION}`` and nothing more.
    """

    name = "defect_probe_gather_truncation"
    module = "defect_probe_gather_truncation.c"
    expected_finding = FindingKind.RECV_TRUNCATION
    default_nprocs = 1

    def __init__(self, **params) -> None:
        params.setdefault("workers", 2)
        params.setdefault("chunks", 4)
        params.setdefault("chunk_elems", 8)
        params.setdefault("steps", 2)
        params.setdefault("work_seconds", 1e-4)
        super().__init__(**params)

    def probe_recv_elems(self, elems: int) -> int:
        return max(1, elems // 2)  # seeded defect: half-size probe buffers


class IntercommLeakChild(MpiProgram):
    """Child of defect_spawn_intercomm_leak: reports up, never disconnects."""

    name = "intercomm_leak_child"
    module = "intercomm_leak_child.c"

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        parent = yield from mpi.comm_get_parent()
        yield from mpi.send(0, nbytes=4, tag=11, comm=parent, payload="up")
        # defect (shared with the parent): parent is never disconnected
        yield from mpi.finalize()


@register_defect
class DefectSpawnIntercommLeak(DefectProgram):
    """A spawn intercommunicator that neither side ever disconnects.

    MPI_Comm_disconnect is the spawn intercomm's MPI_Win_free: both sides
    must collectively sever it before MPI_Finalize.  Here parent and
    children just finalize, so the finalize leak checks must report the
    connected intercomm -- exactly ``{COMM_LEAK}``.
    """

    name = "defect_spawn_intercomm_leak"
    module = "defect_spawn_intercomm_leak.c"
    expected_finding = FindingKind.COMM_LEAK
    default_nprocs = 1
    required_impl = "refmpi"  # exercises the new spawn personality

    def main(self, mpi) -> Generator:
        yield from mpi.init()
        universe = mpi.ep.world.universe
        if "intercomm_leak_child" not in universe.program_registry:
            universe.register_program(IntercommLeakChild())
        inter, _codes = yield from mpi.comm_spawn("intercomm_leak_child", [], 2)
        for _ in range(2):
            yield from mpi.recv(tag=11, comm=inter, nbytes=4)
        # defect: no MPI_Comm_disconnect before MPI_Finalize
        yield from mpi.finalize()
