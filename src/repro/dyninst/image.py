"""Simulated binary images: modules, functions, symbols, weak symbols.

An :class:`Image` is the simulated process's executable plus its linked
libraries, as a performance tool sees them: a symbol table mapping names to
functions, grouped into modules.  Two features matter for reproducing the
paper:

* **Weak symbols** (Section 4.1.1).  A default MPICH build exports
  ``MPI_Send`` as a *weak* alias for the strong symbol ``PMPI_Send``; an
  application call to ``MPI_Send`` therefore executes -- and is instrumented
  as -- ``PMPI_Send``.  Linking a PMPI profiling library interposes a strong
  ``MPI_Send`` wrapper that calls ``PMPI_Send``.  Both shapes are modelled
  here; the tool's metric definitions must list both ``MPI_*`` and ``PMPI_*``
  names to catch either (the Paradyn 4.0 bug the paper fixes).
* **Per-process instrumentation** (one Image instance per process, as
  paradynd instruments each mutatee separately).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

from .snippets import Snippet

__all__ = ["FunctionDef", "Module", "Image", "ImageError"]

#: body(proc, *args) -> generator yielding simulation effects
FunctionBody = Callable[..., Generator]


class ImageError(RuntimeError):
    """Raised for unknown symbols and malformed images."""


class FunctionDef:
    """One function in the image, with entry/return instrumentation points.

    ``tags`` classify the function for metric function-sets (``mpi``,
    ``sync``, ``io``, ``rma`` ...); the MDL compiler resolves ``foreach func
    in <set>`` against them.
    """

    __slots__ = ("name", "module", "body", "tags", "_entry", "_exit")

    def __init__(
        self,
        name: str,
        module: "Module",
        body: FunctionBody,
        tags: Iterable[str] = (),
    ) -> None:
        self.name = name
        self.module = module
        self.body = body
        self.tags = frozenset(tags)
        # instrumentation-point lists are created on first insert: most
        # functions in most processes are never instrumented, and at
        # thousands of ranks the eager pair of empty lists per cloned
        # FunctionDef is measurable launch cost
        self._entry: Optional[list[Snippet]] = None
        self._exit: Optional[list[Snippet]] = None

    # instrumentation points -------------------------------------------------

    def insert(self, snippet: Snippet, *, where: str, order: str = "append") -> None:
        point = self._point(where)
        if order == "append":
            point.append(snippet)
        elif order == "prepend":
            point.insert(0, snippet)
        else:
            raise ImageError(f"unknown insertion order {order!r}")

    def remove(self, snippet: Snippet, *, where: str) -> None:
        point = self._point(where)
        try:
            point.remove(snippet)
        except ValueError:
            raise ImageError(
                f"snippet {snippet.label!r} not installed at {self.name}.{where}"
            ) from None

    def _point(self, where: str) -> list[Snippet]:
        if where == "entry":
            if self._entry is None:
                self._entry = []
            return self._entry
        if where == "return":
            if self._exit is None:
                self._exit = []
            return self._exit
        raise ImageError(f"unknown instrumentation point {where!r}")

    _NO_SNIPPETS: list[Snippet] = []

    def entry_snippets(self) -> list[Snippet]:
        entry = self._entry
        return entry if entry is not None else self._NO_SNIPPETS

    def exit_snippets(self) -> list[Snippet]:
        exit_ = self._exit
        return exit_ if exit_ is not None else self._NO_SNIPPETS

    @property
    def instrumented(self) -> bool:
        return bool(self._entry or self._exit)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FunctionDef {self.module.name}:{self.name}>"


@dataclass
class Module:
    """A compilation unit or library in the image.

    ``system=True`` marks runtime libraries (libc, libmpi) that the
    Performance Consultant excludes from user-code search by default --
    though MPI entry points remain visible as refinement targets through the
    metric function-sets.
    """

    name: str
    system: bool = False
    functions: dict[str, FunctionDef] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Module {self.name} funcs={len(self.functions)}>"


class Image:
    """Symbol table + modules for one simulated process."""

    def __init__(self, name: str = "a.out") -> None:
        self.name = name
        self.modules: dict[str, Module] = {}
        self._symbols: dict[str, FunctionDef] = {}
        self._weak_aliases: dict[str, str] = {}
        #: bumped on every symbol-table change; processes key their
        #: name-resolution caches on it (see SimProcess.call)
        self.version = 0

    # construction ------------------------------------------------------------

    def module(self, name: str, *, system: bool = False) -> Module:
        mod = self.modules.get(name)
        if mod is None:
            mod = Module(name=name, system=system)
            self.modules[name] = mod
        return mod

    def add_function(
        self,
        name: str,
        body: FunctionBody,
        *,
        module: str = "a.out",
        system: bool = False,
        tags: Iterable[str] = (),
    ) -> FunctionDef:
        """Define a strong symbol.  Redefinition is an error (one image ==
        one link step; interposition uses :meth:`add_wrapper`)."""
        if name in self._symbols:
            raise ImageError(f"duplicate strong symbol {name!r}")
        mod = self.module(module, system=system)
        fn = FunctionDef(name, mod, body, tags=tags)
        mod.functions[name] = fn
        self._symbols[name] = fn
        self._weak_aliases.pop(name, None)  # strong definition wins
        self.version += 1
        return fn

    def clone_library(self, template: "Image") -> None:
        """Copy every module of ``template`` into this image.

        Function *definitions* are fresh per image (instrumentation points
        are per-process state, as paradynd instruments each mutatee
        separately) but share the template's bodies and tag sets.  One
        bulk version bump replaces the per-symbol bumps of repeated
        :meth:`add_function` calls -- at thousands of ranks, rebuilding an
        identical MPI library image per process dominates launch time.
        """
        symbols = self._symbols
        for tmod in template.modules.values():
            mod = self.module(tmod.name, system=tmod.system)
            functions = mod.functions
            for name, fn in tmod.functions.items():
                if name in symbols:
                    raise ImageError(f"duplicate strong symbol {name!r}")
                clone = FunctionDef(name, mod, fn.body, tags=fn.tags)
                functions[name] = clone
                symbols[name] = clone
                self._weak_aliases.pop(name, None)
        for alias, target in template._weak_aliases.items():
            if alias not in symbols:
                self._weak_aliases[alias] = target
        self.version += 1

    def interpose(
        self,
        name: str,
        body: FunctionBody,
        *,
        module: str = "libwrapper.so",
        tags: Iterable[str] = (),
    ) -> FunctionDef:
        """Interpose a strong symbol over an existing definition or weak
        alias -- the PMPI profiling-library link trick (Section 4.1.1 /
        4.2.2 of the paper): the wrapper becomes what application calls
        resolve to, and typically calls the ``PMPI_`` strong symbol."""
        mod = self.module(module, system=True)
        fn = FunctionDef(name, mod, body, tags=tags)
        mod.functions[name] = fn
        self._symbols[name] = fn
        self._weak_aliases.pop(name, None)
        self.version += 1
        return fn

    def add_weak_alias(self, alias: str, target: str) -> None:
        """Declare ``alias`` as a weak symbol for ``target``.

        A strong symbol with the same name (already present or added later)
        overrides the alias, matching ELF link semantics.
        """
        if target not in self._symbols:
            raise ImageError(f"weak alias {alias!r} -> undefined symbol {target!r}")
        if alias in self._symbols:
            return  # strong symbol already wins
        self._weak_aliases[alias] = target
        self.version += 1

    # lookup --------------------------------------------------------------------

    def resolve(self, name: str) -> FunctionDef:
        """Resolve a call by name, following weak aliases."""
        fn = self._symbols.get(name)
        if fn is not None:
            return fn
        target = self._weak_aliases.get(name)
        if target is not None:
            return self._symbols[target]
        raise ImageError(f"undefined symbol {name!r} in image {self.name!r}")

    def lookup(self, name: str) -> Optional[FunctionDef]:
        """Like :meth:`resolve` but returns None for undefined symbols."""
        try:
            return self.resolve(name)
        except ImageError:
            return None

    def lookup_strong(self, name: str) -> Optional[FunctionDef]:
        """Look up a *function symbol* without following weak aliases.

        This is how a tool's symbol-table scan sees the binary: in a
        default MPICH build the code's function is ``PMPI_Send``; metric
        definitions that only name ``MPI_Send`` find nothing -- the
        Paradyn 4.0 gap Section 4.1.1 of the paper fixes by adding the
        PMPI names to the definitions."""
        return self._symbols.get(name)

    def defines(self, name: str) -> bool:
        return name in self._symbols or name in self._weak_aliases

    def functions(self) -> Iterable[FunctionDef]:
        return self._symbols.values()

    def functions_tagged(self, tag: str) -> list[FunctionDef]:
        return [fn for fn in self._symbols.values() if tag in fn.tags]

    def app_functions(self) -> list[FunctionDef]:
        """Functions in non-system modules (the Code hierarchy's contents)."""
        return [fn for fn in self._symbols.values() if not fn.module.system]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Image {self.name} symbols={len(self._symbols)}>"
