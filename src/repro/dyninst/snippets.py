"""Instrumentation snippet IR and the variables snippets manipulate.

This is the simulated analogue of Dyninst's abstract syntax trees plus the
Paradyn runtime's counters and timers.  A *snippet* is a small program
inserted at an instrumentation point (function entry or return); it executes
synchronously when the point is reached and manipulates *instrumentation
variables* (counters, wall timers, process timers) that live in the mutatee
process's data block (``SimProcess.instr_vars``).

The IR is deliberately small -- it is the compilation target of the MDL
subset in :mod:`repro.core.mdl` and covers everything in Figure 2 of the
paper: counter arithmetic, wall-timer start/stop, argument access
(``$arg[n]``), guarded execution (``if (...) ...``), ``constrained``
execution, and calls to instrumentation builtins such as ``MPI_Type_size``
and ``DYNINSTWindow_FindUniqueId``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.process import Frame, SimProcess

__all__ = [
    "InstrVar",
    "CounterVar",
    "WallTimerVar",
    "ProcTimerVar",
    "Expr",
    "Const",
    "Arg",
    "ReturnValue",
    "VarValue",
    "BuiltinCall",
    "BinOp",
    "Stmt",
    "AddCounter",
    "SetCounter",
    "ExprStmt",
    "StartTimer",
    "StopTimer",
    "If",
    "Block",
    "Snippet",
    "InstrumentationError",
]


class InstrumentationError(RuntimeError):
    """Raised on malformed snippets or variable misuse."""


# ---------------------------------------------------------------------------
# Instrumentation variables
# ---------------------------------------------------------------------------


class InstrVar:
    """Base class for per-process instrumentation variables."""

    __slots__ = ("var_id", "name")
    _next_id = 0

    def __init__(self, name: str = "") -> None:
        cls = InstrVar
        self.var_id = cls._next_id
        cls._next_id += 1
        self.name = name or f"var{self.var_id}"

    def sample(self, proc: "SimProcess") -> float:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name} id={self.var_id}>"


class CounterVar(InstrVar):
    """An event counter (Paradyn ``counter``)."""

    __slots__ = ("value",)

    def __init__(self, name: str = "", initial: float = 0.0) -> None:
        super().__init__(name)
        self.value = float(initial)

    def add(self, amount: float) -> None:
        self.value += amount

    def set(self, amount: float) -> None:
        self.value = float(amount)

    def sample(self, proc: "SimProcess") -> float:
        return self.value


class _TimerVar(InstrVar):
    """Shared start/stop logic for wall and process timers.

    Timers nest (Paradyn semantics): ``start`` while running increments a
    depth count; only the matching outermost ``stop`` accrues time.  A
    ``stop`` with no matching ``start`` is a no-op -- this happens routinely
    when instrumentation is inserted while the mutatee is already inside the
    instrumented function, so it must be tolerated.
    """

    __slots__ = ("accumulated", "_depth", "_started_at")

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self.accumulated = 0.0
        self._depth = 0
        self._started_at = 0.0

    def _clock(self, proc: "SimProcess") -> float:
        raise NotImplementedError

    def start(self, proc: "SimProcess") -> None:
        if self._depth == 0:
            self._started_at = self._clock(proc)
        self._depth += 1

    def stop(self, proc: "SimProcess") -> None:
        if self._depth == 0:
            return  # inserted mid-flight; tolerate the unmatched stop
        self._depth -= 1
        if self._depth == 0:
            self.accumulated += self._clock(proc) - self._started_at

    @property
    def running(self) -> bool:
        return self._depth > 0

    def sample(self, proc: "SimProcess") -> float:
        value = self.accumulated
        if self._depth > 0:
            value += self._clock(proc) - self._started_at
        return value


class WallTimerVar(_TimerVar):
    """Wall-clock timer (Paradyn ``walltimer``).

    ``start``/``stop`` are overridden with the clock read inlined: timer
    starts and stops run once per instrumented call for every active timer
    metric, and the ``_clock`` double dispatch is measurable there.
    """

    __slots__ = ()

    def _clock(self, proc: "SimProcess") -> float:
        return proc.kernel.now

    def start(self, proc: "SimProcess") -> None:
        if self._depth == 0:
            self._started_at = proc.kernel.now
        self._depth += 1

    def stop(self, proc: "SimProcess") -> None:
        if self._depth == 0:
            return
        self._depth -= 1
        if self._depth == 0:
            self.accumulated += proc.kernel.now - self._started_at


class ProcTimerVar(_TimerVar):
    """Virtual (user CPU) timer (Paradyn ``proctimer``)."""

    __slots__ = ()

    def _clock(self, proc: "SimProcess") -> float:
        return proc.cpu_user_time()

    def start(self, proc: "SimProcess") -> None:
        if self._depth == 0:
            self._started_at = proc.cpu_user_time()
        self._depth += 1

    def stop(self, proc: "SimProcess") -> None:
        if self._depth == 0:
            return
        self._depth -= 1
        if self._depth == 0:
            self.accumulated += proc.cpu_user_time() - self._started_at


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for snippet expressions."""

    def evaluate(self, ctx: "ExecContext") -> Any:
        raise NotImplementedError


@dataclass(frozen=True)
class Const(Expr):
    value: Any

    def evaluate(self, ctx: "ExecContext") -> Any:
        return self.value


@dataclass(frozen=True)
class Arg(Expr):
    """``$arg[n]`` -- the n-th argument of the instrumented call."""

    index: int

    def evaluate(self, ctx: "ExecContext") -> Any:
        args = ctx.frame.args
        if self.index >= len(args):
            raise InstrumentationError(
                f"$arg[{self.index}] out of range for {ctx.frame.name} "
                f"(got {len(args)} args)"
            )
        return args[self.index]


@dataclass(frozen=True)
class ReturnValue(Expr):
    """``$return`` -- only meaningful at a return point."""

    def evaluate(self, ctx: "ExecContext") -> Any:
        if ctx.at_entry:
            raise InstrumentationError("$return read at an entry point")
        return ctx.frame.return_value


@dataclass(frozen=True)
class VarValue(Expr):
    """The current value of another instrumentation variable."""

    var: InstrVar

    def evaluate(self, ctx: "ExecContext") -> Any:
        return self.var.sample(ctx.proc)


@dataclass(frozen=True)
class BuiltinCall(Expr):
    """Call into the instrumentation runtime (``MPI_Type_size`` etc.).

    Builtins are looked up in the process's instrumentation environment
    (installed by the tool daemon) as ``callable(proc, frame, *values)``.
    """

    name: str
    args: tuple[Expr, ...] = ()

    def evaluate(self, ctx: "ExecContext") -> Any:
        fn = ctx.builtins.get(self.name)
        if fn is None:
            raise InstrumentationError(f"unknown instrumentation builtin {self.name!r}")
        values = [a.evaluate(ctx) for a in self.args]
        return fn(ctx.proc, ctx.frame, *values)


_BINOPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "&&": lambda a, b: bool(a) and bool(b),
    "||": lambda a, b: bool(a) or bool(b),
}


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _BINOPS:
            raise InstrumentationError(f"unsupported operator {self.op!r}")

    def evaluate(self, ctx: "ExecContext") -> Any:
        return _BINOPS[self.op](self.left.evaluate(ctx), self.right.evaluate(ctx))


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    def execute(self, ctx: "ExecContext") -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class AddCounter(Stmt):
    """``counter += expr`` (``counter++`` is ``AddCounter(var, Const(1))``)."""

    var: CounterVar
    amount: Expr = Const(1)

    def execute(self, ctx: "ExecContext") -> None:
        value = self.amount.evaluate(ctx)
        self.var.add(float(value))


@dataclass(frozen=True)
class SetCounter(Stmt):
    var: CounterVar
    value: Expr

    def execute(self, ctx: "ExecContext") -> None:
        self.var.set(float(self.value.evaluate(ctx)))


@dataclass(frozen=True)
class StartTimer(Stmt):
    var: _TimerVar

    def execute(self, ctx: "ExecContext") -> None:
        self.var.start(ctx.proc)


@dataclass(frozen=True)
class StopTimer(Stmt):
    var: _TimerVar

    def execute(self, ctx: "ExecContext") -> None:
        self.var.stop(ctx.proc)


@dataclass(frozen=True)
class ExprStmt(Stmt):
    """Evaluate an expression for its side effect (builtin calls)."""

    expr: Expr

    def execute(self, ctx: "ExecContext") -> None:
        self.expr.evaluate(ctx)


@dataclass(frozen=True)
class If(Stmt):
    condition: Expr
    body: tuple[Stmt, ...]

    def execute(self, ctx: "ExecContext") -> None:
        if self.condition.evaluate(ctx):
            for stmt in self.body:
                stmt.execute(ctx)


@dataclass(frozen=True)
class Block(Stmt):
    body: tuple[Stmt, ...]

    def execute(self, ctx: "ExecContext") -> None:
        for stmt in self.body:
            stmt.execute(ctx)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


@dataclass
class ExecContext:
    proc: "SimProcess"
    frame: "Frame"
    at_entry: bool
    builtins: dict[str, Callable]


# -- snippet compilation ------------------------------------------------------
#
# The IR trees above are the *definition* format; executing them by tree
# walking costs a dynamic dispatch plus an ExecContext allocation per node
# visit, and snippets run millions of times per simulated program.  Each
# Snippet therefore compiles its tree once, at construction, into nested
# closures with the signature ``op(proc, frame, at_entry)``; variables,
# constants and operator functions are captured in cell variables, so the
# hot path is plain closure calls with no allocation and no isinstance
# checks.  Unknown Stmt/Expr subclasses (the IR is extensible) fall back to
# the tree-walking ``execute``/``evaluate`` protocol, which remains the
# semantic definition.


def _compile_expr(expr: Expr) -> Callable[["SimProcess", "Frame", bool], Any]:
    kind = type(expr)
    if kind is Const:
        value = expr.value
        return lambda proc, frame, at_entry: value
    if kind is Arg:
        index = expr.index
        def run_arg(proc: "SimProcess", frame: "Frame", at_entry: bool) -> Any:
            args = frame.args
            if index >= len(args):
                raise InstrumentationError(
                    f"$arg[{index}] out of range for {frame.name} "
                    f"(got {len(args)} args)"
                )
            return args[index]
        return run_arg
    if kind is ReturnValue:
        def run_return(proc: "SimProcess", frame: "Frame", at_entry: bool) -> Any:
            if at_entry:
                raise InstrumentationError("$return read at an entry point")
            return frame.return_value
        return run_return
    if kind is VarValue:
        var = expr.var
        if type(var) is CounterVar:
            return lambda proc, frame, at_entry: var.value
        sample = var.sample
        return lambda proc, frame, at_entry: sample(proc)
    if kind is BuiltinCall:
        name = expr.name
        arg_ops = tuple(_compile_expr(a) for a in expr.args)
        def run_builtin(proc: "SimProcess", frame: "Frame", at_entry: bool) -> Any:
            fn = getattr(proc, "instr_builtins", _EMPTY_BUILTINS).get(name)
            if fn is None:
                raise InstrumentationError(f"unknown instrumentation builtin {name!r}")
            return fn(proc, frame, *[op(proc, frame, at_entry) for op in arg_ops])
        return run_builtin
    if kind is BinOp:
        fn = _BINOPS[expr.op]
        left = _compile_expr(expr.left)
        right = _compile_expr(expr.right)
        return lambda proc, frame, at_entry: fn(
            left(proc, frame, at_entry), right(proc, frame, at_entry)
        )
    def run_generic(proc: "SimProcess", frame: "Frame", at_entry: bool) -> Any:
        return expr.evaluate(
            ExecContext(proc, frame, at_entry, getattr(proc, "instr_builtins", _EMPTY_BUILTINS))
        )
    return run_generic


def _compile_stmt(stmt: Stmt) -> Callable[["SimProcess", "Frame", bool], Any]:
    kind = type(stmt)
    if kind is AddCounter and type(stmt.var) is CounterVar:
        var = stmt.var
        if type(stmt.amount) is Const:
            amount = float(stmt.amount.value)
            def run_add_const(proc: "SimProcess", frame: "Frame", at_entry: bool) -> None:
                var.value += amount
            return run_add_const
        amount_op = _compile_expr(stmt.amount)
        def run_add(proc: "SimProcess", frame: "Frame", at_entry: bool) -> None:
            var.value += float(amount_op(proc, frame, at_entry))
        return run_add
    if kind is SetCounter and type(stmt.var) is CounterVar:
        var = stmt.var
        value_op = _compile_expr(stmt.value)
        def run_set(proc: "SimProcess", frame: "Frame", at_entry: bool) -> None:
            var.value = float(value_op(proc, frame, at_entry))
        return run_set
    if kind is StartTimer:
        start = stmt.var.start
        def run_start(proc: "SimProcess", frame: "Frame", at_entry: bool) -> None:
            start(proc)
        return run_start
    if kind is StopTimer:
        stop = stmt.var.stop
        def run_stop(proc: "SimProcess", frame: "Frame", at_entry: bool) -> None:
            stop(proc)
        return run_stop
    if kind is ExprStmt:
        expr_op = _compile_expr(stmt.expr)
        def run_expr(proc: "SimProcess", frame: "Frame", at_entry: bool) -> None:
            expr_op(proc, frame, at_entry)
        return run_expr
    if kind is If:
        cond_op = _compile_expr(stmt.condition)
        body_ops = tuple(_compile_stmt(s) for s in stmt.body)
        if len(body_ops) == 1:
            body0 = body_ops[0]
            def run_if1(proc: "SimProcess", frame: "Frame", at_entry: bool) -> None:
                if cond_op(proc, frame, at_entry):
                    body0(proc, frame, at_entry)
            return run_if1
        def run_if(proc: "SimProcess", frame: "Frame", at_entry: bool) -> None:
            if cond_op(proc, frame, at_entry):
                for op in body_ops:
                    op(proc, frame, at_entry)
        return run_if
    if kind is Block:
        body_ops = tuple(_compile_stmt(s) for s in stmt.body)
        def run_block(proc: "SimProcess", frame: "Frame", at_entry: bool) -> None:
            for op in body_ops:
                op(proc, frame, at_entry)
        return run_block
    def run_generic(proc: "SimProcess", frame: "Frame", at_entry: bool) -> None:
        stmt.execute(
            ExecContext(proc, frame, at_entry, getattr(proc, "instr_builtins", _EMPTY_BUILTINS))
        )
    return run_generic


def _compile_snippet(
    guards: tuple[CounterVar, ...], statements: tuple[Stmt, ...]
) -> Callable[["SimProcess", "Frame", bool], Any]:
    ops = tuple(_compile_stmt(s) for s in statements)
    if not guards:
        if len(ops) == 1:
            return ops[0]
        def run_plain(proc: "SimProcess", frame: "Frame", at_entry: bool) -> None:
            for op in ops:
                op(proc, frame, at_entry)
        return run_plain
    if len(guards) == 1:
        guard = guards[0]
        if len(ops) == 1:
            op0 = ops[0]
            def run_guarded1(proc: "SimProcess", frame: "Frame", at_entry: bool) -> None:
                if guard.value:
                    op0(proc, frame, at_entry)
            return run_guarded1
        def run_guarded(proc: "SimProcess", frame: "Frame", at_entry: bool) -> None:
            if guard.value:
                for op in ops:
                    op(proc, frame, at_entry)
        return run_guarded
    def run_multi_guarded(proc: "SimProcess", frame: "Frame", at_entry: bool) -> None:
        for g in guards:
            if not g.value:
                return
        for op in ops:
            op(proc, frame, at_entry)
    return run_multi_guarded


class Snippet:
    """A compiled snippet: statements plus optional constraint guards.

    ``guards`` are counter variables that must all be non-zero for the body
    to execute -- the implementation of MDL's ``constrained`` keyword.  The
    guards themselves are maintained by separately-inserted constraint
    snippets (which prepend, so they run first at a shared point).

    Construction compiles the statement tree into ``_run``, a closure
    ``(proc, frame, at_entry) -> None`` that the instrumented-call fast path
    in :meth:`repro.sim.process.SimProcess._run_snippets` invokes directly.
    """

    __slots__ = ("statements", "guards", "label", "owner", "_run")

    def __init__(
        self,
        statements: Sequence[Stmt],
        *,
        guards: Sequence[CounterVar] = (),
        label: str = "",
        owner: Any = None,
    ) -> None:
        self.statements = tuple(statements)
        self.guards = tuple(guards)
        self.label = label
        self.owner = owner
        self._run = _compile_snippet(self.guards, self.statements)

    def execute(self, proc: "SimProcess", frame: "Frame", *, at_entry: bool) -> None:
        self._run(proc, frame, at_entry)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Snippet {self.label or hex(id(self))} stmts={len(self.statements)}>"


_EMPTY_BUILTINS: dict[str, Callable] = {}
