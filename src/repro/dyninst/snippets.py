"""Instrumentation snippet IR and the variables snippets manipulate.

This is the simulated analogue of Dyninst's abstract syntax trees plus the
Paradyn runtime's counters and timers.  A *snippet* is a small program
inserted at an instrumentation point (function entry or return); it executes
synchronously when the point is reached and manipulates *instrumentation
variables* (counters, wall timers, process timers) that live in the mutatee
process's data block (``SimProcess.instr_vars``).

The IR is deliberately small -- it is the compilation target of the MDL
subset in :mod:`repro.core.mdl` and covers everything in Figure 2 of the
paper: counter arithmetic, wall-timer start/stop, argument access
(``$arg[n]``), guarded execution (``if (...) ...``), ``constrained``
execution, and calls to instrumentation builtins such as ``MPI_Type_size``
and ``DYNINSTWindow_FindUniqueId``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.process import Frame, SimProcess

__all__ = [
    "InstrVar",
    "CounterVar",
    "WallTimerVar",
    "ProcTimerVar",
    "Expr",
    "Const",
    "Arg",
    "ReturnValue",
    "VarValue",
    "BuiltinCall",
    "BinOp",
    "Stmt",
    "AddCounter",
    "SetCounter",
    "ExprStmt",
    "StartTimer",
    "StopTimer",
    "If",
    "Block",
    "Snippet",
    "InstrumentationError",
]


class InstrumentationError(RuntimeError):
    """Raised on malformed snippets or variable misuse."""


# ---------------------------------------------------------------------------
# Instrumentation variables
# ---------------------------------------------------------------------------


class InstrVar:
    """Base class for per-process instrumentation variables."""

    __slots__ = ("var_id", "name")
    _next_id = 0

    def __init__(self, name: str = "") -> None:
        cls = InstrVar
        self.var_id = cls._next_id
        cls._next_id += 1
        self.name = name or f"var{self.var_id}"

    def sample(self, proc: "SimProcess") -> float:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name} id={self.var_id}>"


class CounterVar(InstrVar):
    """An event counter (Paradyn ``counter``)."""

    __slots__ = ("value",)

    def __init__(self, name: str = "", initial: float = 0.0) -> None:
        super().__init__(name)
        self.value = float(initial)

    def add(self, amount: float) -> None:
        self.value += amount

    def set(self, amount: float) -> None:
        self.value = float(amount)

    def sample(self, proc: "SimProcess") -> float:
        return self.value


class _TimerVar(InstrVar):
    """Shared start/stop logic for wall and process timers.

    Timers nest (Paradyn semantics): ``start`` while running increments a
    depth count; only the matching outermost ``stop`` accrues time.  A
    ``stop`` with no matching ``start`` is a no-op -- this happens routinely
    when instrumentation is inserted while the mutatee is already inside the
    instrumented function, so it must be tolerated.
    """

    __slots__ = ("accumulated", "_depth", "_started_at")

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self.accumulated = 0.0
        self._depth = 0
        self._started_at = 0.0

    def _clock(self, proc: "SimProcess") -> float:
        raise NotImplementedError

    def start(self, proc: "SimProcess") -> None:
        if self._depth == 0:
            self._started_at = self._clock(proc)
        self._depth += 1

    def stop(self, proc: "SimProcess") -> None:
        if self._depth == 0:
            return  # inserted mid-flight; tolerate the unmatched stop
        self._depth -= 1
        if self._depth == 0:
            self.accumulated += self._clock(proc) - self._started_at

    @property
    def running(self) -> bool:
        return self._depth > 0

    def sample(self, proc: "SimProcess") -> float:
        value = self.accumulated
        if self._depth > 0:
            value += self._clock(proc) - self._started_at
        return value


class WallTimerVar(_TimerVar):
    """Wall-clock timer (Paradyn ``walltimer``)."""

    __slots__ = ()

    def _clock(self, proc: "SimProcess") -> float:
        return proc.kernel.now


class ProcTimerVar(_TimerVar):
    """Virtual (user CPU) timer (Paradyn ``proctimer``)."""

    __slots__ = ()

    def _clock(self, proc: "SimProcess") -> float:
        return proc.cpu_user_time()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for snippet expressions."""

    def evaluate(self, ctx: "ExecContext") -> Any:
        raise NotImplementedError


@dataclass(frozen=True)
class Const(Expr):
    value: Any

    def evaluate(self, ctx: "ExecContext") -> Any:
        return self.value


@dataclass(frozen=True)
class Arg(Expr):
    """``$arg[n]`` -- the n-th argument of the instrumented call."""

    index: int

    def evaluate(self, ctx: "ExecContext") -> Any:
        args = ctx.frame.args
        if self.index >= len(args):
            raise InstrumentationError(
                f"$arg[{self.index}] out of range for {ctx.frame.name} "
                f"(got {len(args)} args)"
            )
        return args[self.index]


@dataclass(frozen=True)
class ReturnValue(Expr):
    """``$return`` -- only meaningful at a return point."""

    def evaluate(self, ctx: "ExecContext") -> Any:
        if ctx.at_entry:
            raise InstrumentationError("$return read at an entry point")
        return ctx.frame.return_value


@dataclass(frozen=True)
class VarValue(Expr):
    """The current value of another instrumentation variable."""

    var: InstrVar

    def evaluate(self, ctx: "ExecContext") -> Any:
        return self.var.sample(ctx.proc)


@dataclass(frozen=True)
class BuiltinCall(Expr):
    """Call into the instrumentation runtime (``MPI_Type_size`` etc.).

    Builtins are looked up in the process's instrumentation environment
    (installed by the tool daemon) as ``callable(proc, frame, *values)``.
    """

    name: str
    args: tuple[Expr, ...] = ()

    def evaluate(self, ctx: "ExecContext") -> Any:
        fn = ctx.builtins.get(self.name)
        if fn is None:
            raise InstrumentationError(f"unknown instrumentation builtin {self.name!r}")
        values = [a.evaluate(ctx) for a in self.args]
        return fn(ctx.proc, ctx.frame, *values)


_BINOPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "&&": lambda a, b: bool(a) and bool(b),
    "||": lambda a, b: bool(a) or bool(b),
}


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _BINOPS:
            raise InstrumentationError(f"unsupported operator {self.op!r}")

    def evaluate(self, ctx: "ExecContext") -> Any:
        return _BINOPS[self.op](self.left.evaluate(ctx), self.right.evaluate(ctx))


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    def execute(self, ctx: "ExecContext") -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class AddCounter(Stmt):
    """``counter += expr`` (``counter++`` is ``AddCounter(var, Const(1))``)."""

    var: CounterVar
    amount: Expr = Const(1)

    def execute(self, ctx: "ExecContext") -> None:
        value = self.amount.evaluate(ctx)
        self.var.add(float(value))


@dataclass(frozen=True)
class SetCounter(Stmt):
    var: CounterVar
    value: Expr

    def execute(self, ctx: "ExecContext") -> None:
        self.var.set(float(self.value.evaluate(ctx)))


@dataclass(frozen=True)
class StartTimer(Stmt):
    var: _TimerVar

    def execute(self, ctx: "ExecContext") -> None:
        self.var.start(ctx.proc)


@dataclass(frozen=True)
class StopTimer(Stmt):
    var: _TimerVar

    def execute(self, ctx: "ExecContext") -> None:
        self.var.stop(ctx.proc)


@dataclass(frozen=True)
class ExprStmt(Stmt):
    """Evaluate an expression for its side effect (builtin calls)."""

    expr: Expr

    def execute(self, ctx: "ExecContext") -> None:
        self.expr.evaluate(ctx)


@dataclass(frozen=True)
class If(Stmt):
    condition: Expr
    body: tuple[Stmt, ...]

    def execute(self, ctx: "ExecContext") -> None:
        if self.condition.evaluate(ctx):
            for stmt in self.body:
                stmt.execute(ctx)


@dataclass(frozen=True)
class Block(Stmt):
    body: tuple[Stmt, ...]

    def execute(self, ctx: "ExecContext") -> None:
        for stmt in self.body:
            stmt.execute(ctx)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


@dataclass
class ExecContext:
    proc: "SimProcess"
    frame: "Frame"
    at_entry: bool
    builtins: dict[str, Callable]


class Snippet:
    """A compiled snippet: statements plus optional constraint guards.

    ``guards`` are counter variables that must all be non-zero for the body
    to execute -- the implementation of MDL's ``constrained`` keyword.  The
    guards themselves are maintained by separately-inserted constraint
    snippets (which prepend, so they run first at a shared point).
    """

    __slots__ = ("statements", "guards", "label", "owner")

    def __init__(
        self,
        statements: Sequence[Stmt],
        *,
        guards: Sequence[CounterVar] = (),
        label: str = "",
        owner: Any = None,
    ) -> None:
        self.statements = tuple(statements)
        self.guards = tuple(guards)
        self.label = label
        self.owner = owner

    def execute(self, proc: "SimProcess", frame: "Frame", *, at_entry: bool) -> None:
        for guard in self.guards:
            if not guard.value:
                return
        ctx = ExecContext(
            proc=proc,
            frame=frame,
            at_entry=at_entry,
            builtins=getattr(proc, "instr_builtins", _EMPTY_BUILTINS),
        )
        for stmt in self.statements:
            stmt.execute(ctx)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Snippet {self.label or hex(id(self))} stmts={len(self.statements)}>"


_EMPTY_BUILTINS: dict[str, Callable] = {}
