"""Simulated dynamic-instrumentation substrate (the Dyninst analogue).

Provides binary images with weak-symbol-aware symbol tables, instrumentation
points at function entry/return, a snippet IR with counters and timers, and
a mutator that inserts/removes snippets in running simulated processes.
"""

from .image import FunctionDef, Image, ImageError, Module
from .mutator import InstrumentationHandle, Mutator
from .snippets import (
    AddCounter,
    ExprStmt,
    Arg,
    BinOp,
    Block,
    BuiltinCall,
    Const,
    CounterVar,
    Expr,
    If,
    InstrumentationError,
    InstrVar,
    ProcTimerVar,
    ReturnValue,
    SetCounter,
    Snippet,
    StartTimer,
    Stmt,
    StopTimer,
    VarValue,
    WallTimerVar,
)

__all__ = [
    "Image",
    "Module",
    "FunctionDef",
    "ImageError",
    "Mutator",
    "InstrumentationHandle",
    "Snippet",
    "InstrVar",
    "CounterVar",
    "WallTimerVar",
    "ProcTimerVar",
    "Expr",
    "Const",
    "Arg",
    "ReturnValue",
    "VarValue",
    "BuiltinCall",
    "BinOp",
    "Stmt",
    "AddCounter",
    "SetCounter",
    "ExprStmt",
    "StartTimer",
    "StopTimer",
    "If",
    "Block",
    "InstrumentationError",
]
