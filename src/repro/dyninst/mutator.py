"""The mutator: runtime insertion and deletion of instrumentation.

This is the simulated Dyninst API used by the tool daemon: attach to a
process, allocate instrumentation variables in it, insert snippets at
function entry/return points, and delete them again.  Insertion and deletion
are *dynamic* -- they happen while the mutatee runs, which is the property
the paper leans on to keep data volume manageable ("performance measurement
instructions only need to be inserted in code sections where a performance
problem is suspected").

Each insertion returns an :class:`InstrumentationHandle`; deleting the
handle removes every snippet it installed, so a metric-focus pair can be
disabled as one unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from ..sim.process import SimProcess
from .image import FunctionDef, ImageError
from .snippets import CounterVar, InstrVar, ProcTimerVar, Snippet, WallTimerVar

__all__ = ["Mutator", "InstrumentationHandle"]


@dataclass
class _Installed:
    function: FunctionDef
    where: str
    snippet: Snippet


@dataclass
class InstrumentationHandle:
    """All snippets + variables installed for one logical request."""

    mutator: "Mutator"
    label: str = ""
    installed: list[_Installed] = field(default_factory=list)
    variables: list[InstrVar] = field(default_factory=list)
    active: bool = True

    def delete(self) -> None:
        self.mutator.delete(self)


class Mutator:
    """Instrumentation controller for a single mutatee process."""

    def __init__(self, proc: SimProcess) -> None:
        self.proc = proc
        if not hasattr(proc, "instr_builtins"):
            proc.instr_builtins = {}  # type: ignore[attr-defined]

    # -- variables -------------------------------------------------------------

    def new_counter(self, name: str = "", initial: float = 0.0) -> CounterVar:
        var = CounterVar(name=name, initial=initial)
        self.proc.instr_vars[var.var_id] = var
        return var

    def new_wall_timer(self, name: str = "") -> WallTimerVar:
        var = WallTimerVar(name=name)
        self.proc.instr_vars[var.var_id] = var
        return var

    def new_proc_timer(self, name: str = "") -> ProcTimerVar:
        var = ProcTimerVar(name=name)
        self.proc.instr_vars[var.var_id] = var
        return var

    def free_variable(self, var: InstrVar) -> None:
        self.proc.instr_vars.pop(var.var_id, None)

    # -- builtins ---------------------------------------------------------------

    def register_builtin(self, name: str, fn: Callable) -> None:
        """Expose an instrumentation runtime call (e.g. MPI_Type_size)."""
        self.proc.instr_builtins[name] = fn  # type: ignore[attr-defined]

    # -- snippet insertion -------------------------------------------------------

    def handle(self, label: str = "") -> InstrumentationHandle:
        return InstrumentationHandle(mutator=self, label=label)

    def insert(
        self,
        handle: InstrumentationHandle,
        function: str | FunctionDef,
        where: str,
        snippet: Snippet,
        *,
        order: str = "append",
    ) -> None:
        """Insert ``snippet`` at ``function``'s ``where`` point.

        ``function`` may be a name (resolved through the image, weak-symbol
        aware) or a :class:`FunctionDef` already in hand.  Unknown names
        raise :class:`ImageError` -- callers that probe for optionally
        present functions should use :meth:`insert_if_present`.
        """
        fn = function if isinstance(function, FunctionDef) else self.proc.image.resolve(function)
        fn.insert(snippet, where=where, order=order)
        handle.installed.append(_Installed(function=fn, where=where, snippet=snippet))
        if where == "entry":
            # "catch-up" execution (as Dyninst does): if the mutatee is
            # currently inside the instrumented function, run the entry
            # snippet now -- otherwise timers on long-running functions
            # (main!) would never start for instrumentation inserted
            # mid-flight.  One execution per live activation keeps timer
            # nesting depths consistent with the eventual exits.
            for frame in self.proc.stack:
                if frame.function is fn:
                    snippet.execute(self.proc, frame, at_entry=True)

    def insert_if_present(
        self,
        handle: InstrumentationHandle,
        function: str,
        where: str,
        snippet: Snippet,
        *,
        order: str = "append",
    ) -> bool:
        """Insert if the symbol exists; metric definitions list function
        names for several MPI implementations, most absent in any one image."""
        fn = self.proc.image.lookup(function)
        if fn is None:
            return False
        self.insert(handle, fn, where, snippet, order=order)
        return True

    def delete(self, handle: InstrumentationHandle) -> None:
        """Remove everything the handle installed and free its variables."""
        if not handle.active:
            return
        for item in handle.installed:
            try:
                item.function.remove(item.snippet, where=item.where)
            except ImageError:  # pragma: no cover - double-removal guard
                pass
        handle.installed.clear()
        for var in handle.variables:
            self.free_variable(var)
        handle.variables.clear()
        handle.active = False

    def track_variable(self, handle: InstrumentationHandle, var: InstrVar) -> InstrVar:
        handle.variables.append(var)
        return var
