"""repro -- reproduction of "Performance Tool Support for MPI-2 on Linux"
(Mohror & Karavanic, SC 2004).

A Paradyn-style dynamic-instrumentation performance tool (``repro.core``)
over a discrete-event simulated Linux cluster (``repro.sim``), simulated
LAM/MPICH MPI implementations (``repro.mpi``), job launching
(``repro.launch``), the PPerfMark benchmark suite (``repro.pperfmark``),
comparator tools (``repro.tracetools``), and the paper's analyses
(``repro.analysis``).

Quick start::

    from repro import MpiUniverse, Paradyn
    from repro.pperfmark import SmallMessages

    universe = MpiUniverse(impl="lam")
    tool = Paradyn(universe)
    tool.run_consultant()
    universe.launch(SmallMessages(iterations=5000), nprocs=6)
    universe.run()
    print(tool.render_consultant())
"""

from .core import Focus, Paradyn
from .mpi import MpiProgram, MpiUniverse

__version__ = "1.0.0"

__all__ = ["Paradyn", "Focus", "MpiUniverse", "MpiProgram", "__version__"]
