"""``mpirun`` argument handling for both implementations.

Reproduces the launch paths the enhanced Paradyn had to understand
(Section 4.1 of the paper):

* **LAM**: ``mpirun -np N prog``, ``mpirun N prog``, ``mpirun C prog``,
  ``mpirun n0-2,4 prog``, ``mpirun c0,3 prog``, and mixtures;
* **MPICH ch_p4mpd**: ``mpirun -np N -m machinefile -wdir dir prog`` --
  ``-m``/``-wdir`` are the arguments Section 4.1.1 added support for on
  non-shared filesystems.

``mpirun`` returns the launched :class:`~repro.mpi.world.MpiWorld`; the
performance tool attaches via the universe's process hooks, the way the
enhanced Paradyn daemon starts MPI processes directly rather than through
the intermediate generated script the paper removed.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..mpi.world import MpiProgram, MpiUniverse, MpiWorld
from ..sim.node import Cpu
from .lamboot import LamSession, NotationError
from .machinefile import MachineFile

__all__ = ["MpirunError", "parse_lam_args", "parse_mpich_args", "mpirun"]


class MpirunError(ValueError):
    """Raised for malformed mpirun command lines."""


def parse_lam_args(
    args: Sequence[str], session: LamSession
) -> tuple[str, list[str], list[Cpu]]:
    """Parse a LAM mpirun command line -> (program, program args, placement)."""
    placement: list[Cpu] = []
    np: Optional[int] = None
    program: Optional[str] = None
    prog_args: list[str] = []
    i = 0
    args = list(args)
    while i < len(args):
        token = args[i]
        if program is not None:
            prog_args.append(token)
            i += 1
            continue
        if token == "-np":
            if i + 1 >= len(args):
                raise MpirunError("-np needs a count")
            try:
                np = int(args[i + 1])
            except ValueError:
                raise MpirunError(f"bad -np count {args[i + 1]!r}") from None
            i += 2
        elif token == "N" or token == "C" or (
            len(token) > 1 and token[0] in "nc" and token[1].isdigit()
        ):
            try:
                placement.extend(session.placement_from_tokens([token]))
            except NotationError as exc:
                raise MpirunError(str(exc)) from exc
            i += 1
        elif token.startswith("-"):
            raise MpirunError(f"unknown LAM mpirun option {token!r}")
        else:
            program = token
            i += 1
    if program is None:
        raise MpirunError("no program named on the command line")
    if np is not None and placement:
        # e.g. "mpirun -np 4 n0-1 prog": first np slots of the location list
        placement = [placement[i % len(placement)] for i in range(np)]
    elif np is not None:
        placement = session.placement_np(np)
    elif not placement:
        raise MpirunError("no process count or location specification given")
    return program, prog_args, placement


def parse_mpich_args(
    args: Sequence[str], universe: MpiUniverse
) -> tuple[str, list[str], list[Cpu], str]:
    """Parse an MPICH mpirun command line -> (program, args, placement, wdir)."""
    np: Optional[int] = None
    machinefile: Optional[MachineFile] = None
    wdir = "/home/user"
    program: Optional[str] = None
    prog_args: list[str] = []
    i = 0
    args = list(args)
    while i < len(args):
        token = args[i]
        if program is not None:
            prog_args.append(token)
            i += 1
            continue
        if token == "-np":
            if i + 1 >= len(args):
                raise MpirunError("-np needs a count")
            try:
                np = int(args[i + 1])
            except ValueError:
                raise MpirunError(f"bad -np count {args[i + 1]!r}") from None
            i += 2
        elif token == "-m":
            if i + 1 >= len(args):
                raise MpirunError("-m needs a machine file")
            machinefile = MachineFile.parse(args[i + 1])
            i += 2
        elif token == "-wdir":
            if i + 1 >= len(args):
                raise MpirunError("-wdir needs a directory")
            wdir = args[i + 1]
            i += 2
        elif token.startswith("-"):
            raise MpirunError(f"unknown MPICH mpirun option {token!r}")
        else:
            program = token
            i += 1
    if program is None:
        raise MpirunError("no program named on the command line")
    if np is None:
        raise MpirunError("MPICH mpirun requires -np")
    if machinefile is None:
        machinefile = MachineFile.for_cluster(universe.cluster)
    nodes = machinefile.nodes(universe.cluster)
    cpus: list[Cpu] = []
    for node, entry in zip(nodes, machinefile.entries):
        cpus.extend(node.cpus[: entry.cpus])
    placement = [cpus[i % len(cpus)] for i in range(np)]
    return program, prog_args, placement, wdir


def mpirun(
    universe: MpiUniverse,
    args: Sequence[str],
    *,
    program: Optional[MpiProgram] = None,
    machinefile: "MachineFile | str | None" = None,
) -> MpiWorld:
    """Launch an MPI job the way the universe's implementation would.

    ``args`` is the mpirun command line (without the leading ``mpirun``).
    The program token is looked up in the universe's program registry unless
    a :class:`MpiProgram` is passed explicitly (it is then registered under
    its command-line name).
    """
    impl_name = universe.impl.name
    if impl_name in ("lam", "refmpi"):
        session = LamSession.boot(
            universe.cluster,
            machinefile if machinefile is not None else MachineFile.for_cluster(universe.cluster),
        ) if not isinstance(machinefile, LamSession) else machinefile
        command, prog_args, placement = parse_lam_args(args, session)
        wdir = "/home/user"
    else:
        command, prog_args, placement, wdir = parse_mpich_args(args, universe)
    if program is not None:
        universe.program_registry[command] = program
    world = universe.launch(command, len(placement), placement=placement, argv=prog_args)
    for ep in world.endpoints:
        ep.proc.working_dir = wdir
    return world
