"""Machine-file parsing.

Both LAM (``lamboot`` boot schema) and MPICH (``mpirun -m``) describe the
cluster in a plain-text machine file: one host per line, an optional CPU
count, ``#`` comments.  Section 4.1 of the paper covers the handling added
to Paradyn for these files on non-shared filesystems.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.node import Cluster, Node

__all__ = ["MachineEntry", "MachineFile", "MachineFileError"]


class MachineFileError(ValueError):
    """Raised for malformed machine files or unknown hosts."""


@dataclass(frozen=True)
class MachineEntry:
    hostname: str
    cpus: int = 1

    def __post_init__(self) -> None:
        if self.cpus < 1:
            raise MachineFileError(f"{self.hostname}: cpu count must be >= 1")


class MachineFile:
    """An ordered list of (hostname, cpu count) entries.

    LAM node indices (``n0``, ``n1`` ...) follow the order hosts are listed
    here, as do LAM CPU indices (``c0`` ... across hosts in file order).
    """

    def __init__(self, entries: list[MachineEntry]) -> None:
        if not entries:
            raise MachineFileError("machine file lists no hosts")
        self.entries = list(entries)

    @classmethod
    def parse(cls, text: str) -> "MachineFile":
        """Parse machine-file text.  Accepted line forms::

            hostname
            hostname:4          # MPICH style
            hostname cpu=4      # LAM boot-schema style
        """
        entries: list[MachineEntry] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            cpus = 1
            if ":" in line:
                host, _, count = line.partition(":")
                host = host.strip()
                try:
                    cpus = int(count.strip())
                except ValueError:
                    raise MachineFileError(f"line {lineno}: bad cpu count {count.strip()!r}")
            else:
                parts = line.split()
                host = parts[0]
                for part in parts[1:]:
                    if part.startswith("cpu="):
                        try:
                            cpus = int(part[4:])
                        except ValueError:
                            raise MachineFileError(f"line {lineno}: bad cpu count {part!r}")
                    else:
                        raise MachineFileError(f"line {lineno}: unrecognized token {part!r}")
            entries.append(MachineEntry(hostname=host, cpus=cpus))
        return cls(entries)

    @classmethod
    def for_cluster(cls, cluster: Cluster) -> "MachineFile":
        """The machine file describing an entire simulated cluster."""
        return cls([MachineEntry(node.name, node.num_cpus) for node in cluster.nodes])

    @property
    def num_hosts(self) -> int:
        return len(self.entries)

    @property
    def num_cpus(self) -> int:
        return sum(entry.cpus for entry in self.entries)

    def nodes(self, cluster: Cluster) -> list[Node]:
        """Resolve hostnames against a cluster (order preserved)."""
        resolved = []
        for entry in self.entries:
            try:
                node = cluster.node_by_name(entry.hostname)
            except KeyError:
                raise MachineFileError(f"unknown host {entry.hostname!r}") from None
            if entry.cpus > node.num_cpus:
                raise MachineFileError(
                    f"{entry.hostname}: machine file claims {entry.cpus} CPUs, "
                    f"node has {node.num_cpus}"
                )
            resolved.append(node)
        return resolved

    def render(self) -> str:
        return "\n".join(f"{e.hostname} cpu={e.cpus}" for e in self.entries) + "\n"
