"""LAM application schemas.

An application schema tells the LAM daemons exactly where to start
processes; ``MPI_Comm_spawn`` consumes one through the LAM-specific
``lam_spawn_file`` info key (Section 4.2.2 of the paper -- this is the
implementation-defined spawn-placement channel that makes spawn placement
opaque to tools).

Schema line format (subset)::

    <program> [-np N] [location tokens...]

e.g. ``child -np 3 n0-2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.node import Cluster, Cpu
from .lamboot import LamSession, NotationError
from .machinefile import MachineFile

__all__ = ["AppSchemaLine", "AppSchema", "AppSchemaError"]


class AppSchemaError(ValueError):
    """Raised for malformed application schemas."""


@dataclass
class AppSchemaLine:
    program: str
    np: int = 0  # 0 means "derived from the location tokens"
    locations: list[str] = field(default_factory=list)


class AppSchema:
    """A parsed application schema."""

    def __init__(self, lines: list[AppSchemaLine]) -> None:
        if not lines:
            raise AppSchemaError("application schema is empty")
        self.lines = lines

    @classmethod
    def parse(cls, text: str) -> "AppSchema":
        lines: list[AppSchemaLine] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            stripped = raw.split("#", 1)[0].strip()
            if not stripped:
                continue
            tokens = stripped.split()
            program = tokens[0]
            np = 0
            locations: list[str] = []
            i = 1
            while i < len(tokens):
                token = tokens[i]
                if token == "-np":
                    if i + 1 >= len(tokens):
                        raise AppSchemaError(f"line {lineno}: -np needs a count")
                    try:
                        np = int(tokens[i + 1])
                    except ValueError:
                        raise AppSchemaError(
                            f"line {lineno}: bad -np count {tokens[i + 1]!r}"
                        ) from None
                    i += 2
                else:
                    locations.append(token)
                    i += 1
            lines.append(AppSchemaLine(program=program, np=np, locations=locations))
        return cls(lines)

    def placement(self, cluster: Cluster, maxprocs: int) -> list[Cpu]:
        """CPUs for ``maxprocs`` processes according to the schema."""
        session = LamSession.boot(cluster, MachineFile.for_cluster(cluster))
        cpus: list[Cpu] = []
        for line in self.lines:
            if line.locations:
                located = session.placement_from_tokens(line.locations)
            else:
                located = session.placement_all_cpus()
            count = line.np or len(located)
            for i in range(count):
                cpus.append(located[i % len(located)])
        if len(cpus) < maxprocs:
            raise AppSchemaError(
                f"schema provides {len(cpus)} slots, spawn wants {maxprocs}"
            )
        return cpus[:maxprocs]
