"""LAM session management: ``lamboot`` plus the node/CPU selection notation.

Section 4.1.2 of the paper enumerates the three ways LAM users specify
where MPI processes start, all of which the enhanced Paradyn had to parse:

1. **Direct CPU count**: ``-np n`` starts ``n`` processes on the first
   ``n`` processors.
2. **Node specification**: ``N`` (one process per node) or ``nR[,R]*``
   where each ``R`` is a node index or inclusive range within
   ``[0, num_nodes)`` -- e.g. ``n0-2,4`` selects nodes 0,1,2,4.
3. **Processor specification**: ``C`` (one process per CPU) or ``cR[,R]*``
   over ``[0, num_cpus)``.

Mixtures of node and processor specifications are allowed on one command
line, as in LAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.node import Cluster, Cpu, Node
from .machinefile import MachineFile, MachineFileError

__all__ = ["LamSession", "NotationError", "parse_range_list"]


class NotationError(ValueError):
    """Raised for malformed or out-of-range LAM node/CPU notation."""


def parse_range_list(spec: str, limit: int, what: str) -> list[int]:
    """Parse ``R[,R]*`` where R is ``i`` or ``i-j`` (inclusive), each index
    in ``[0, limit)``.  Order is preserved; duplicates are kept (LAM starts
    one process per mention)."""
    if not spec:
        raise NotationError(f"empty {what} specification")
    indices: list[int] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            raise NotationError(f"empty element in {what} specification {spec!r}")
        if "-" in part:
            lo_s, _, hi_s = part.partition("-")
            try:
                lo, hi = int(lo_s), int(hi_s)
            except ValueError:
                raise NotationError(f"bad {what} range {part!r}") from None
            if lo > hi:
                raise NotationError(f"reversed {what} range {part!r}")
            span = list(range(lo, hi + 1))
        else:
            try:
                span = [int(part)]
            except ValueError:
                raise NotationError(f"bad {what} index {part!r}") from None
        for index in span:
            if not 0 <= index < limit:
                raise NotationError(
                    f"{what} index {index} out of range [0, {limit}) in {spec!r}"
                )
            indices.append(index)
    return indices


class LamSession:
    """A booted LAM session: the node/CPU universe mpirun selects from."""

    def __init__(self, cluster: Cluster, machinefile: MachineFile) -> None:
        self.cluster = cluster
        self.machinefile = machinefile
        self.nodes: list[Node] = machinefile.nodes(cluster)
        # LAM numbers CPUs across nodes in boot-schema order.
        self.cpus: list[Cpu] = []
        for node, entry in zip(self.nodes, machinefile.entries):
            self.cpus.extend(node.cpus[: entry.cpus])

    @classmethod
    def boot(cls, cluster: Cluster, machinefile: "MachineFile | str | None" = None) -> "LamSession":
        if machinefile is None:
            machinefile = MachineFile.for_cluster(cluster)
        elif isinstance(machinefile, str):
            machinefile = MachineFile.parse(machinefile)
        return cls(cluster, machinefile)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_cpus(self) -> int:
        return len(self.cpus)

    # -- process placement ----------------------------------------------------

    def placement_np(self, n: int) -> list[Cpu]:
        """``-np n``: the first n processors (wrapping if oversubscribed)."""
        if n < 1:
            raise NotationError("-np requires a positive count")
        return [self.cpus[i % self.num_cpus] for i in range(n)]

    def placement_all_nodes(self) -> list[Cpu]:
        """``N``: one process on each node of the session."""
        return [node.cpus[0] for node in self.nodes]

    def placement_all_cpus(self) -> list[Cpu]:
        """``C``: one process on every processor of the session."""
        return list(self.cpus)

    def placement_nodes(self, spec: str) -> list[Cpu]:
        """``nR[,R]*``: one process on each named node."""
        indices = parse_range_list(spec, self.num_nodes, "node")
        return [self.nodes[i].cpus[0] for i in indices]

    def placement_cpus(self, spec: str) -> list[Cpu]:
        """``cR[,R]*``: one process on each named processor."""
        indices = parse_range_list(spec, self.num_cpus, "cpu")
        return [self.cpus[i] for i in indices]

    def placement_from_tokens(self, tokens: list[str]) -> list[Cpu]:
        """Resolve a mixture of node/processor specifications, in order."""
        placement: list[Cpu] = []
        for token in tokens:
            if token == "N":
                placement.extend(self.placement_all_nodes())
            elif token == "C":
                placement.extend(self.placement_all_cpus())
            elif token.startswith("n") and len(token) > 1:
                placement.extend(self.placement_nodes(token[1:]))
            elif token.startswith("c") and len(token) > 1:
                placement.extend(self.placement_cpus(token[1:]))
            else:
                raise NotationError(f"unrecognized LAM location token {token!r}")
        return placement
