"""Job launching: machine files, LAM sessions, application schemas, mpirun."""

from .appschema import AppSchema, AppSchemaError, AppSchemaLine
from .lamboot import LamSession, NotationError, parse_range_list
from .machinefile import MachineEntry, MachineFile, MachineFileError
from .mpirun import MpirunError, mpirun, parse_lam_args, parse_mpich_args

__all__ = [
    "MachineFile",
    "MachineEntry",
    "MachineFileError",
    "LamSession",
    "NotationError",
    "parse_range_list",
    "AppSchema",
    "AppSchemaLine",
    "AppSchemaError",
    "mpirun",
    "parse_lam_args",
    "parse_mpich_args",
    "MpirunError",
]
