"""Command-line interface: run tool sessions and regenerate paper results.

Usage (after installation)::

    python -m repro list                      # the PPerfMark programs
    python -m repro run small_messages --impl mpich
    python -m repro run oned --impl lam --metric rma_sync_wait
    python -m repro verify hot_procedure --impl lam
    python -m repro sanitize winfencesync --impl mpich2
    python -m repro sanitize all --impl lam --quick
    python -m repro sanitize defects
    python -m repro table2
    python -m repro table3
    python -m repro table1
    python -m repro fleet sweep --jobs 4       # parallel, cached regeneration
    python -m repro fleet status
    python -m repro fleet clean --gc
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import (
    render_table1,
    render_table2,
    render_table3,
    run_program,
    table2_rows,
    table3_rows,
    verify_program,
)
from .core.resources import Focus
from .pperfmark import REGISTRY, create, program_names

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Performance Tool Support for MPI-2 on Linux' "
            "(Mohror & Karavanic, SC 2004)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the PPerfMark programs")

    run_p = sub.add_parser("run", help="run one program under the tool")
    run_p.add_argument("program", choices=sorted(REGISTRY))
    run_p.add_argument("--impl", default="lam",
                       choices=["lam", "mpich", "mpich2", "refmpi"])
    run_p.add_argument("--nprocs", type=int, default=None)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--metric", action="append", default=[],
                       help="enable a metric at Whole Program (repeatable)")
    run_p.add_argument("--no-consultant", action="store_true")
    run_p.add_argument("--cpu-threshold", type=float, default=None,
                       help="Performance Consultant CPU threshold (paper default 0.3)")
    run_p.add_argument("--hierarchy", action="store_true",
                       help="print the final resource hierarchy")

    verify_p = sub.add_parser("verify", help="grade one program (Table 2/3 row)")
    verify_p.add_argument("program", choices=sorted(REGISTRY))
    verify_p.add_argument("--impl", default="lam",
                          choices=["lam", "mpich", "mpich2", "refmpi"])

    san_p = sub.add_parser(
        "sanitize", help="run the MPI correctness sanitizer over a program"
    )
    san_p.add_argument(
        "program",
        help="a PPerfMark or defect program name, 'all' (the 17 clean "
        "PPerfMark programs) or 'defects' (the seeded-defect library)",
    )
    san_p.add_argument("--impl", default=None,
                       choices=["lam", "mpich", "mpich2", "refmpi"],
                       help="MPI personality (default lam; defects that "
                       "need a specific personality pick it themselves)")
    san_p.add_argument("--nprocs", type=int, default=None)
    san_p.add_argument("--seed", type=int, default=0)
    san_p.add_argument("--quick", action="store_true",
                       help="scaled-down program parameters (CI sweeps)")
    san_p.add_argument("--jobs", type=int, default=1,
                       help="run multi-program sweeps through the fleet "
                       "worker pool with this many processes")
    san_p.add_argument("--no-cache", action="store_true",
                       help="bypass the fleet result cache")

    mpirun_p = sub.add_parser(
        "mpirun", help="launch a PPerfMark program through the simulated mpirun"
    )
    mpirun_p.add_argument("--impl", default="lam",
                          choices=["lam", "mpich", "mpich2", "refmpi"])
    mpirun_p.add_argument("args", nargs="+",
                          help="mpirun arguments, e.g. -np 6 small_messages "
                               "or n0-2,4 hot_procedure (LAM notation)")

    sub.add_parser("table1", help="regenerate Table 1 (the RMA metrics)")
    t2 = sub.add_parser("table2", help="regenerate Table 2 (MPI-1 suite)")
    t2.add_argument("--impls", default="lam,mpich")
    t3 = sub.add_parser("table3", help="regenerate Table 3 (MPI-2 suite)")
    t3.add_argument("--impl", default="lam")

    from .fleet.cli import add_fleet_parser
    from .observe.cli import add_observe_parser  # mode-salt: none

    add_fleet_parser(sub)
    add_observe_parser(sub)
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    thresholds = {}
    if args.cpu_threshold is not None:
        thresholds["PC_CPUThreshold"] = args.cpu_threshold
    metrics = [(m, Focus.whole_program()) for m in args.metric]
    program = create(args.program)
    try:
        result = run_program(
            program,
            impl=args.impl,
            nprocs=args.nprocs,
            seed=args.seed,
            consultant=not args.no_consultant,
            metrics=metrics,
            thresholds=thresholds or None,
        )
    except Exception as exc:  # clean CLI diagnostics, not tracebacks
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"# {args.program} / {args.impl}: ran {result.elapsed:.2f} simulated "
          f"seconds on {result.world.size} processes")
    if not args.no_consultant:
        print("\nCondensed Performance Consultant output:")
        print(result.consultant.render_condensed())
    for metric in args.metric:
        data = result.data(metric)
        print(f"\n{metric} @ Whole Program: total {data.total():.6g}")
        for pid, hist in sorted(data.per_process.items()):
            print(f"  pid{pid}: total {hist.total():.6g}, "
                  f"mean rate {hist.mean_rate():.6g}/s, bin {hist.bin_width}s")
    if args.hierarchy and result.tool is not None:
        print("\nResource hierarchy:")
        print(result.tool.render_hierarchy())
    return 0


def _cmd_mpirun(args: argparse.Namespace) -> int:
    from .analysis.runner import cluster_for
    from .launch import MpirunError, mpirun
    from .mpi import MpiUniverse

    universe = MpiUniverse(impl=args.impl, cluster=cluster_for(8, 2))
    for name in sorted(REGISTRY):
        universe.register_program(create(name))
    try:
        world = mpirun(universe, args.args)
    except (MpirunError, KeyError) as exc:
        print(f"mpirun: {exc}", file=sys.stderr)
        return 2
    universe.run()
    print(f"# ran {world.program.name!r} on {world.size} processes "
          f"({args.impl}), {universe.kernel.now:.2f} simulated seconds")
    for ep in world.endpoints:
        proc = ep.proc
        print(f"  rank {ep.world_rank}: node {proc.node.name}  "
              f"wall {proc.wall_time():.2f}s  user {proc.cpu_user_time():.2f}s  "
              f"sys {proc.cpu_system_time():.2f}s")
    return 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from .analysis.report import render_sanitizer_report, render_sanitizer_summary
    from .fleet import (
        FleetScheduler,
        RunSpec,
        default_cache,
        report_from_artifact,
        run_cached,
    )
    from .pperfmark.defects import DEFECT_REGISTRY
    from .sanitizer import CLEAN_PROGRAMS

    if args.program == "all":
        names = list(CLEAN_PROGRAMS)
    elif args.program == "defects":
        names = sorted(DEFECT_REGISTRY)
    else:
        names = [args.program]

    def impl_for(name: str) -> str:
        cls = DEFECT_REGISTRY.get(name)
        required = getattr(cls, "required_impl", None) if cls is not None else None
        return required or args.impl or "lam"

    specs = [
        RunSpec.make(
            name,
            mode="sanitize",
            impl=impl_for(name),
            nprocs=args.nprocs,
            seed=args.seed,
            quick=args.quick,
        )
        for name in names
    ]
    cache = None if args.no_cache else default_cache()
    try:
        if args.jobs > 1 and len(specs) > 1:
            scheduler = FleetScheduler(jobs=args.jobs, cache=cache)
            for spec in specs:
                scheduler.submit(spec)
            artifacts = scheduler.run()
            reports = [report_from_artifact(artifacts[s.digest]) for s in specs]
        else:
            reports = []
            for spec in specs:
                if cache is not None:
                    reports.append(report_from_artifact(run_cached(spec, cache)))
                else:
                    from .fleet import execute_spec

                    reports.append(report_from_artifact(execute_spec(spec)))
    except KeyError as exc:
        print(f"sanitize: {exc.args[0]}", file=sys.stderr)
        return 2
    except RuntimeError as exc:
        print(f"sanitize: {exc}", file=sys.stderr)
        return 2
    for report in reports:
        print(render_sanitizer_report(report))
    if len(reports) > 1:
        print()
        print(render_sanitizer_summary(reports))
    return 0 if all(r.status in ("clean", "unsupported") for r in reports) else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    verdict = verify_program(args.program, args.impl)
    print(f"{verdict.program} / {verdict.impl}: {verdict.result_text} "
          f"(paper: {verdict.paper_result}; "
          f"{'match' if verdict.passed else 'MISMATCH'})")
    for detail in verdict.details:
        print("   ", detail)
    return 0 if verdict.passed else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print("MPI-1:", ", ".join(program_names("mpi1")))
        print("MPI-2:", ", ".join(program_names("mpi2")))
        return 0
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "sanitize":
        return _cmd_sanitize(args)
    if args.command == "mpirun":
        return _cmd_mpirun(args)
    if args.command == "fleet":
        from .fleet.cli import cmd_fleet

        return cmd_fleet(args)
    if args.command == "observe":
        from .observe.cli import cmd_observe  # mode-salt: none

        return cmd_observe(args)
    if args.command == "table1":
        print(render_table1())
        return 0
    if args.command == "table2":
        rows = table2_rows(impls=tuple(args.impls.split(",")))
        print(render_table2(rows))
        return 0 if all(v.passed for v in rows) else 1
    if args.command == "table3":
        rows = table3_rows(impl=args.impl)
        print(render_table3(rows))
        return 0 if all(v.passed for v in rows) else 1
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
