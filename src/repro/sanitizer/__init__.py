"""MUST-style dynamic MPI correctness checking over the simulator.

``repro.sanitizer`` watches a simulated run through the engine's hook
points and reports violations of MPI semantics the paper's subject matter
revolves around: RMA access-epoch discipline and data races, deadlock,
resource leaks at finalize (including the MPICH window-id-reuse hazard),
and receive truncation / datatype mismatches.

Entry points:

* :func:`sanitize_program` -- run one PPerfMark (or seeded-defect) program
  under the monitor and get a :class:`SanitizerReport`;
* ``python -m repro sanitize <program> --impl <...>`` -- the CLI wrapper.
"""

from .core import Sanitizer, normalize_mpi_name
from .findings import Finding, FindingKind, SanitizerReport
from .run import CLEAN_PROGRAMS, SMALL_PARAMS, resolve_program, sanitize_program
from .vclock import vc_concurrent, vc_join, vc_leq

__all__ = [
    "Sanitizer",
    "normalize_mpi_name",
    "Finding",
    "FindingKind",
    "SanitizerReport",
    "CLEAN_PROGRAMS",
    "SMALL_PARAMS",
    "resolve_program",
    "sanitize_program",
    "vc_join",
    "vc_leq",
    "vc_concurrent",
]
