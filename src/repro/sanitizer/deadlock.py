"""Wait-for-graph deadlock analysis over a stuck simulation.

When the DES kernel detects that live tasks remain but nothing is scheduled,
the sanitizer's deadlock hook runs while every blocked process's call stack
is still frozen mid-call.  This module turns those stacks into a wait-for
graph (who is blocked inside which MPI call, waiting on whom) and looks for
a cycle -- the classic MUST/Marmot-style diagnosis.  Graph edges are
conservative: a cycle is definitive, but the absence of one still gets a
generic deadlock finding listing the blocked calls.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..mpi.comm import Communicator
from ..mpi.datatypes import ANY_SOURCE
from ..mpi.rma import Window
from .findings import Finding, FindingKind

__all__ = ["analyze_deadlock"]

# Calls that synchronize with every member of a communicator (or the
# window's communicator): each blocked caller waits on the members that have
# not yet arrived at the same call.
_COLLECTIVE_CALLS = {
    "Barrier",
    "Bcast",
    "Reduce",
    "Allreduce",
    "Gather",
    "Gatherv",
    "Allgather",
    "Scatter",
    "Scatterv",
    "Alltoall",
    "Init",
    "Finalize",
    "Comm_dup",
    "Comm_split",
    "Comm_create",
    "Comm_spawn",
    "Intercomm_merge",
    "Comm_disconnect",
    "File_open",
    "File_close",
    "Win_create",
    "Win_free",
    "Win_fence",
}

_GAT_CALLS = {"Win_start", "Win_complete", "Win_wait", "Win_test"}


def _find_instance(args: tuple, cls: type) -> Optional[Any]:
    for arg in args:
        if isinstance(arg, cls):
            return arg
    return None


def _blocked_frame(ep, norm: Callable[[str], str]):
    """The innermost frame of a blocked process whose name looks like MPI."""
    for frame in reversed(ep.proc.stack):
        name = norm(frame.name)
        if name.startswith("MPI_"):
            return frame, name[len("MPI_") :]
    return None, ""


def _peers_of(ep, comm: Communicator) -> list:
    group = comm.local_group_for(ep) if comm.remote_group is not None else comm.group
    peers = [m for m in group if m is not ep]
    if comm.remote_group is not None:
        other = comm.remote_group if group is comm.group else comm.group
        peers.extend(other)
    return peers


def analyze_deadlock(universe, norm: Callable[[str], str]) -> list[Finding]:
    """Build the wait-for graph of blocked endpoints and diagnose it."""
    blocked: list[tuple[Any, Any, str]] = []  # (ep, frame, call)
    for world in universe.worlds:
        for ep in world.endpoints:
            if ep.proc.exited:
                continue
            frame, call = _blocked_frame(ep, norm)
            if frame is not None:
                blocked.append((ep, frame, call))
    if not blocked:
        return []

    index = {id(ep): i for i, (ep, _, _) in enumerate(blocked)}
    in_call: dict[int, tuple[str, int]] = {}  # ep id -> (call, comm cid)
    for ep, frame, call in blocked:
        comm = _find_instance(frame.args, Communicator)
        if comm is None:
            win = _find_instance(frame.args, Window)
            comm = win.comm if win is not None else None
        in_call[id(ep)] = (call, comm.cid if comm is not None else -1)

    def edge_targets(ep, frame, call) -> list:
        args = frame.args
        comm = _find_instance(args, Communicator)
        win = _find_instance(args, Window)
        if win is not None and comm is None:
            comm = win.comm
        if call in ("Recv", "Probe", "Iprobe"):
            source = args[3] if call == "Recv" else args[0]
            if comm is None:
                return []
            if source == ANY_SOURCE:
                return _peers_of(ep, comm)
            try:
                return [comm.peer_for(ep, source)]
            except Exception:
                return []
        if call in ("Send", "Ssend", "Isend"):
            if comm is None:
                return []
            try:
                return [comm.peer_for(ep, args[3])]
            except Exception:
                return []
        if call == "Sendrecv":
            if comm is None:
                return []
            targets = []
            for rank in (args[3], args[8]):
                if rank == ANY_SOURCE:
                    targets.extend(_peers_of(ep, comm))
                else:
                    try:
                        targets.append(comm.peer_for(ep, rank))
                    except Exception:
                        pass
            return targets
        if call in ("Wait", "Waitall", "Waitany", "Test"):
            # a pending request completes only if some other live process
            # acts; wait on all of them (conservative)
            return [other for other, _, _ in blocked if other is not ep]
        if call == "Win_lock" and win is not None:
            # under a shared lock several holders may block the acquisition
            holders = win.lock_holders(args[1])
            try:
                return [win.comm.group[holder] for holder in holders]
            except Exception:
                return []
        if call in _GAT_CALLS and win is not None:
            return [
                m
                for m in win.comm.group
                if m is not ep and in_call.get(id(m), ("", -2))[0] not in _GAT_CALLS
            ]
        if call in _COLLECTIVE_CALLS and comm is not None:
            # wait on members that have not reached the same collective
            return [
                m
                for m in _peers_of(ep, comm)
                if in_call.get(id(m), ("", -2)) != (call, comm.cid)
            ]
        return []

    graph: dict[int, list[int]] = {}
    for ep, frame, call in blocked:
        targets = edge_targets(ep, frame, call)
        graph[index[id(ep)]] = sorted(
            {index[id(t)] for t in targets if id(t) in index}
        )

    cycle = _find_cycle(graph)
    def describe(i: int) -> str:
        ep, _, call = blocked[i]
        return f"rank {ep.world_rank} (world {ep.world.world_id}) in MPI_{call}"

    if cycle:
        chain = " -> ".join(describe(i) for i in cycle) + f" -> {describe(cycle[0])}"
        return [
            Finding(
                kind=FindingKind.DEADLOCK,
                rank=blocked[cycle[0]][0].world_rank,
                obj="wait-for cycle",
                detail=f"circular wait: {chain}",
            )
        ]
    summary = "; ".join(describe(i) for i in range(len(blocked)))
    return [
        Finding(
            kind=FindingKind.DEADLOCK,
            rank=-1,
            obj="blocked processes",
            detail=f"no progress possible: {summary}",
        )
    ]


def _find_cycle(graph: dict[int, list[int]]) -> Optional[list[int]]:
    """Iterative DFS; returns one cycle as a node list, or None."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in graph}
    parent: dict[int, int] = {}
    for root in graph:
        if color[root] != WHITE:
            continue
        stack: list[tuple[int, int]] = [(root, 0)]
        color[root] = GRAY
        while stack:
            node, i = stack[-1]
            succs = graph.get(node, ())
            if i < len(succs):
                stack[-1] = (node, i + 1)
                nxt = succs[i]
                if color.get(nxt, BLACK) == WHITE:
                    color[nxt] = GRAY
                    parent[nxt] = node
                    stack.append((nxt, 0))
                elif color.get(nxt) == GRAY:
                    cycle = [node]
                    cur = node
                    while cur != nxt:
                        cur = parent[cur]
                        cycle.append(cur)
                    cycle.reverse()
                    return cycle
            else:
                color[node] = BLACK
                stack.pop()
    return None
