"""The sanitizer proper: event collection and the four detector families.

The :class:`Sanitizer` attaches to an :class:`~repro.mpi.world.MpiUniverse`
*before* launch and observes the run through four hook families:

* per-process **trace hooks** (entry/exit around every simulated call) --
  MPI synchronization tracking, vector clocks, request bookkeeping, message
  counters, and the determinism digest;
* the universe's **window hooks** plus per-window **observers** -- strict
  epoch checking and happens-before race detection for every recorded
  put/get/accumulate;
* the universe's **event hooks** (``recv_matched``) -- truncation and
  datatype-mismatch checks at match time;
* the kernel's **deadlock hooks** -- wait-for-graph analysis while the
  blocked stacks are still frozen.

The engine itself is deliberately permissive about access epochs (windows
open a fence epoch at creation, matching the real implementations' laziness)
so the sanitizer keeps its own *strict* MPI-standard epoch state machine:
NONE until the first ``MPI_Win_fence``, START restricted to the start group,
LOCK restricted to the locked target, FREED after ``MPI_Win_free``.
"""

from __future__ import annotations

import hashlib
from typing import Any, Optional

from ..mpi.impls.base import COLL_TAG_BASE
from ..mpi.rma import RmaOpKind
from ..mpi.status import Request
from .deadlock import analyze_deadlock
from .findings import Finding, FindingKind
from .vclock import CowClock, vc_concurrent, vc_join, vc_leq, vc_round_join

__all__ = ["Sanitizer", "normalize_mpi_name"]


def normalize_mpi_name(name: str) -> str:
    """Fold profiling-interface names (``PMPI_Send``) onto ``MPI_Send``."""
    if name.startswith("PMPI_"):
        return "MPI_" + name[5:]
    return name


# access-epoch states of the strict tracker
_NONE, _FENCE, _START, _LOCK, _FREED = "none", "fence", "start", "lock", "freed"

# RMA op kinds that conflict when overlapping and concurrent: everything
# except GET/GET (both read) and ACC/ACC (the standard makes same-op
# accumulates to the same location well-defined).
def _kinds_conflict(a: str, b: str) -> bool:
    return not ((a == "G" and b == "G") or (a == "A" and b == "A"))


_KIND_CHAR = {RmaOpKind.PUT: "P", RmaOpKind.GET: "G", RmaOpKind.ACCUMULATE: "A"}


class _EpCounters:
    __slots__ = ("sent_msgs", "sent_bytes", "recv_msgs", "recv_bytes",
                 "puts", "gets", "accs", "rma_bytes")

    def __init__(self) -> None:
        self.sent_msgs = 0
        self.sent_bytes = 0
        self.recv_msgs = 0
        self.recv_bytes = 0
        self.puts = 0
        self.gets = 0
        self.accs = 0
        self.rma_bytes = 0


class Sanitizer:
    """One universe's correctness monitor.  Attach before ``launch``."""

    def __init__(self, universe) -> None:
        self.universe = universe
        self.findings: list[Finding] = []
        self.deadlock_reported = False

        self._eps: list[Any] = []
        self._ep_index: dict[int, int] = {}  # id(ep) -> stable index
        # every rank starts from ONE shared empty base, so pre-first-sync
        # stamps already share a base and race checks take the O(delta)
        # fast path (bases are never mutated; ticks go to the delta)
        self._clock_genesis: dict[int, int] = {}
        self._clocks: list[CowClock] = []
        self._counters: list[_EpCounters] = []
        self._requests: list[dict[int, tuple[str, int]]] = []
        # ep indexes that entered MPI_Finalize -- tracked at *entry*, not via
        # proc.exited: a rank blocked inside the collective finalize has
        # committed to never completing its requests, so its leaks are real
        # even when a deadlock elsewhere keeps it from exiting
        self._in_finalize: set[int] = set()

        #: connected (spawn) intercommunicators, for finalize leak checks
        self._intercomms: list[Any] = []

        self._windows: list[Any] = []
        # strict epoch state, keyed by window *object* (ids may be reused)
        self._wstate: dict[int, dict[int, str]] = {}
        self._fence_open: dict[int, set[int]] = {}
        self._start_group: dict[int, dict[int, tuple[int, ...]]] = {}
        self._lock_target: dict[int, dict[int, int]] = {}
        # race-candidate buffers, per window then per *target rank* (ops on
        # different targets never conflict, so each op only scans its own
        # target's list): (origin_idx, origin_rank, target, lo, hi,
        # kind_char, stamp, fence_epoch).  fence_epoch is the origin's
        # fence-round counter at op time -- fence completion prunes by
        # integer compare instead of a vector-clock comparison per op.
        self._ops: dict[int, dict[int, list[tuple]]] = {}
        self._race_seen: set[tuple] = set()
        self._uaf_seen: set[tuple] = set()
        self._freed_swept: set[int] = set()

        # fence / barrier vector-clock rounds.  The *_joined caches hold
        # each round's interned join, computed once at the first exit and
        # shared (by reference) across every exiting rank
        self._fence_round: dict[int, dict[int, int]] = {}
        self._fence_entry: dict[tuple[int, int], dict[int, CowClock]] = {}
        self._fence_exits: dict[tuple[int, int], int] = {}
        self._fence_joined: dict[tuple[int, int], dict] = {}
        self._barrier_round: dict[tuple[int, int], int] = {}
        self._barrier_entry: dict[tuple[int, int], dict[int, CowClock]] = {}
        self._barrier_exits: dict[tuple[int, int], int] = {}
        self._barrier_joined: dict[tuple[int, int], dict] = {}
        # per-round memo of "does this (rebased) clock base already
        # dominate the round join?" -- id(base) -> (base ref, verdict);
        # the ref pins the dict so its id cannot be recycled mid-round
        self._round_dom: dict[tuple[int, int], dict[int, tuple[dict, bool]]] = {}
        # passive-target lock epochs are SHARED or EXCLUSIVE.  An exclusive
        # grant serializes against every earlier epoch on the target, so an
        # exclusive locker joins the accumulated clock of *all* prior
        # unlocks; a shared grant only serializes against exclusive holders,
        # so a shared locker joins prior *exclusive* unlocks only -- two
        # overlapping shared epochs stay concurrent and their conflicting
        # puts surface as RMA races.
        self._lock_mode: dict[tuple[int, int], str] = {}  # (win, rank) -> mode
        self._unlock_all: dict[tuple[int, int], dict] = {}  # (win, target)
        self._unlock_excl: dict[tuple[int, int], dict] = {}  # (win, target)
        self._wait_rec: dict[int, Any] = {}  # id(frame) -> PostEpochRecord

        self._digest = hashlib.sha256()

    # -- attachment ----------------------------------------------------------

    def attach(self) -> "Sanitizer":
        self.universe.process_hooks.append(self._on_process)
        self.universe.win_hooks.append(self._on_window)
        self.universe.comm_hooks.append(self._on_comm)
        self.universe.event_hooks.append(self._on_event)
        self.universe.kernel.deadlock_hooks.append(self.on_deadlock)
        return self

    def _on_process(self, proc, ep, world) -> None:
        self._ep_index[id(ep)] = len(self._eps)
        self._eps.append(ep)
        self._clocks.append(CowClock(self._clock_genesis))
        self._counters.append(_EpCounters())
        self._requests.append({})
        proc.trace_hooks.append(
            lambda p, frame, event, _ep=ep: self._on_trace(_ep, frame, event)
        )

    def _on_comm(self, comm) -> None:
        # Record every communicator; the finalize check filters on the
        # ``connected`` flag, which the universe sets right *after* the
        # creation hook fires (spawn intercomms only).
        self._intercomms.append(comm)

    def _on_window(self, win) -> None:
        self._windows.append(win)
        w = id(win)
        self._wstate[w] = {r: _NONE for r in range(win.comm.size)}
        self._fence_open[w] = set()
        self._start_group[w] = {}
        self._lock_target[w] = {}
        self._ops[w] = {}
        self._fence_round[w] = {}
        win.observers.append(self._on_rma_op)

    # -- helpers -------------------------------------------------------------

    def _report(self, kind: FindingKind, rank: int, obj: str, detail: str) -> None:
        self.findings.append(Finding(kind=kind, rank=rank, obj=obj, detail=detail))

    def _tick(self, idx: int) -> CowClock:
        clock = self._clocks[idx]
        clock.tick(idx)
        return clock

    def _assign(self, idx: int, merged) -> None:
        """Install a joined clock, wrapping plain-dict joins copy-on-write."""
        self._clocks[idx] = merged if type(merged) is CowClock else CowClock(merged)

    def _adopt(self, idx: int, clock: CowClock, entry_stamp, joined: dict, rkey) -> None:
        """Install a synchronization round's joined clock for rank ``idx``.

        When the rank has not ticked since its entry snapshot (no traced
        MPI calls inside the collective -- the refmpi/LAM case), its clock
        is already <= the join and every exiting rank shares ONE interned
        dict: O(1) per rank, O(ranks) memory per round instead of
        O(ranks^2).  Otherwise (MPICH's dissemination ticks its clock
        mid-collective) fall back to a real join.
        """
        if entry_stamp is not None and entry_stamp.base is clock.base:
            if entry_stamp.delta is clock.delta:
                self._clocks[idx] = CowClock(joined)
                return
            # the rank ticked since entry (nested traced calls inside the
            # collective body, e.g. LAM's fence sends) -- but ticks only
            # advance the owner's own component, so as long as no nested
            # *synchronization* reassigned the clock, the join is just
            # ``joined`` with the own component overridden
            ed, cd = entry_stamp.delta, clock.delta
            if all(k == idx or ed.get(k, -1) == v for k, v in cd.items()):
                own = clock.get(idx)
                if own > joined.get(idx, 0):
                    self._clocks[idx] = CowClock(joined, {idx: own})
                else:
                    self._clocks[idx] = CowClock(joined)
                return
        # a nested synchronization rebased this rank mid-round (e.g. LAM's
        # fence runs a barrier on the window's hidden communicator, whose
        # join happens after every member entered the outer round and so
        # dominates the outer join).  All ranks exit on the same new base,
        # so test domination once per (round, base) instead of per rank.
        memo = self._round_dom.get(rkey)
        if memo is None:
            memo = self._round_dom[rkey] = {}
        base = clock.base
        hit = memo.get(id(base))
        if hit is None:
            verdict = all(v <= base.get(k, 0) for k, v in joined.items())
            memo[id(base)] = (base, verdict)
        else:
            verdict = hit[1]
        if verdict:
            return  # joined <= base <= clock: the join is clock itself
        self._assign(idx, vc_join(clock, joined))

    def _check_freed(self, win, ep, call: str) -> bool:
        """Flag (once per window+rank) any MPI call on a freed window."""
        state = self._wstate.get(id(win))
        rank = ep.world_rank
        if state is None or state.get(self._comm_rank(win, ep)) != _FREED:
            return False
        key = (id(win), rank)
        if key not in self._uaf_seen:
            self._uaf_seen.add(key)
            reused = any(
                w is not win and w.win_id == win.win_id and not w.freed
                for w in self._windows
            )
            note = (
                f" (window id {win.win_id} has since been reused by a new window -- "
                "the id-reuse hazard the paper's tool works around)"
                if reused
                else ""
            )
            self._report(
                FindingKind.WINDOW_USE_AFTER_FREE,
                rank,
                win.name,
                f"{call} on window {win.name!r} after MPI_Win_free{note}",
            )
        return True

    def _comm_rank(self, win, ep) -> int:
        try:
            return win.comm.rank_of(ep)
        except Exception:  # pragma: no cover - defensive
            return -1

    # -- RMA op observer (strict epochs + races) -----------------------------

    def _on_rma_op(self, win, ep, rank: int, op) -> None:
        w = id(win)
        idx = self._ep_index.get(id(ep))
        if idx is None or w not in self._wstate:  # pragma: no cover - defensive
            return
        counters = self._counters[idx]
        kind_char = _KIND_CHAR[op.kind]
        if kind_char == "P":
            counters.puts += 1
        elif kind_char == "G":
            counters.gets += 1
        else:
            counters.accs += 1
        counters.rma_bytes += op.nbytes

        state = self._wstate[w].get(rank, _NONE)
        call = f"MPI_{op.kind.value.capitalize()}"
        if state == _NONE:
            self._report(
                FindingKind.RMA_EPOCH_VIOLATION,
                ep.world_rank,
                win.name,
                f"{call} to rank {op.target_rank} outside any access epoch "
                "(no MPI_Win_fence / MPI_Win_start / MPI_Win_lock opened one)",
            )
            return
        if state == _START and op.target_rank not in self._start_group[w].get(rank, ()):
            self._report(
                FindingKind.RMA_EPOCH_VIOLATION,
                ep.world_rank,
                win.name,
                f"{call} to rank {op.target_rank}, which is not in the "
                "MPI_Win_start access group",
            )
            return
        if state == _LOCK and op.target_rank != self._lock_target[w].get(rank):
            self._report(
                FindingKind.RMA_EPOCH_VIOLATION,
                ep.world_rank,
                win.name,
                f"{call} to rank {op.target_rank} while holding the lock on "
                f"rank {self._lock_target[w].get(rank)}",
            )
            return

        stamp = self._clocks[idx].snapshot()
        if state == _START:
            record = ep.start_records.get(win.win_id, {}).get(op.target_rank)
            if record is not None:
                stamp = vc_join(stamp, getattr(record, "_san_post", {}))
        lo, hi = op.target_disp, op.target_disp + op.count
        buffer = self._ops[w].get(op.target_rank)
        if buffer:
            for oidx, orank, otarget, olo, ohi, okind, oclock, oepoch in buffer:
                if (
                    oidx != idx
                    and olo < hi
                    and lo < ohi
                    and _kinds_conflict(okind, kind_char)
                    and vc_concurrent(oclock, stamp)
                ):
                    key = (w, op.target_rank, min(oidx, idx), max(oidx, idx))
                    if key not in self._race_seen:
                        self._race_seen.add(key)
                        self._report(
                            FindingKind.RMA_RACE,
                            ep.world_rank,
                            win.name,
                            f"concurrent conflicting access to rank "
                            f"{op.target_rank} elements [{max(lo, olo)}, "
                            f"{min(hi, ohi)}) of window {win.name!r}: "
                            f"{call} by rank {ep.world_rank} races with a "
                            f"{'put' if okind == 'P' else 'get' if okind == 'G' else 'accumulate'} "
                            f"by rank {self._eps[oidx].world_rank} in the same "
                            "synchronization epoch",
                        )
        else:
            buffer = self._ops[w][op.target_rank] = []
        buffer.append(
            (idx, rank, op.target_rank, lo, hi, kind_char, stamp,
             self._fence_round[w].get(idx, 0))
        )

    # -- recv-side checks ----------------------------------------------------

    def _on_event(self, kind: str, data: dict) -> None:
        if kind != "recv_matched":
            return
        ep, env = data["ep"], data["env"]
        if env.tag >= COLL_TAG_BASE or getattr(env, "rma_sink", False):
            return
        idx = self._ep_index.get(id(ep))
        if idx is None:  # pragma: no cover - defensive
            return
        counters = self._counters[idx]
        counters.recv_msgs += 1
        counters.recv_bytes += env.nbytes
        count, datatype = data.get("count") or 0, data.get("datatype")
        if count and datatype is not None:
            capacity = datatype.extent(count)
            if env.nbytes > capacity:
                self._report(
                    FindingKind.RECV_TRUNCATION,
                    ep.world_rank,
                    f"tag {env.tag}",
                    f"receive buffer holds {capacity} bytes "
                    f"({count} x {datatype.name}) but the matched message "
                    f"from rank {env.src_rank} carries {env.nbytes} bytes: "
                    "data would be truncated",
                )
            elif env.datatype is not None and env.datatype.name != datatype.name:
                self._report(
                    FindingKind.DATATYPE_MISMATCH,
                    ep.world_rank,
                    f"tag {env.tag}",
                    f"receive posted as {count} x {datatype.name} but rank "
                    f"{env.src_rank} sent {env.datatype.name}: type signatures "
                    "do not match",
                )

    # -- trace hooks ---------------------------------------------------------

    def _on_trace(self, ep, frame, event: str) -> None:
        idx = self._ep_index[id(ep)]
        name = normalize_mpi_name(frame.name)
        self._digest.update(
            f"{self.universe.kernel.now!r}|{idx}|{name}|{event}\n".encode()
        )
        if not name.startswith("MPI_"):
            return
        call = name[4:]
        args = frame.args
        if event == "entry":
            clock = self._tick(idx)
            handler = _ENTRY.get(call)
        else:
            clock = self._clocks[idx]
            handler = _EXIT.get(call)
        if handler is not None:
            handler(self, ep, idx, clock, frame, call, args)

    # entry/exit handlers (bound through the _ENTRY/_EXIT tables below)

    def _h_send_entry(self, ep, idx, clock, frame, call, args) -> None:
        tag = args[4]
        if tag >= COLL_TAG_BASE:
            return
        counters = self._counters[idx]
        counters.sent_msgs += 1
        count, dtype = args[1], args[2]
        try:
            counters.sent_bytes += dtype.extent(count) if count else 0
        except AttributeError:  # sendrecv passes raw byte counts
            counters.sent_bytes += int(count)

    def _h_isend_exit(self, ep, idx, clock, frame, call, args) -> None:
        self._h_send_entry(ep, idx, clock, frame, call, args)
        request = frame.return_value
        if isinstance(request, Request) and args[4] < COLL_TAG_BASE:
            self._requests[idx][id(request)] = ("MPI_Isend", args[4])

    def _h_irecv_exit(self, ep, idx, clock, frame, call, args) -> None:
        request = frame.return_value
        if isinstance(request, Request) and args[4] < COLL_TAG_BASE:
            self._requests[idx][id(request)] = ("MPI_Irecv", args[4])

    def _h_wait_entry(self, ep, idx, clock, frame, call, args) -> None:
        self._requests[idx].pop(id(args[0]), None)

    def _h_waitall_entry(self, ep, idx, clock, frame, call, args) -> None:
        for request in args[1]:
            self._requests[idx].pop(id(request), None)

    def _h_test_exit(self, ep, idx, clock, frame, call, args) -> None:
        if frame.return_value:
            self._requests[idx].pop(id(args[0]), None)

    def _h_finalize_entry(self, ep, idx, clock, frame, call, args) -> None:
        self._in_finalize.add(idx)

    def _h_barrier_entry(self, ep, idx, clock, frame, call, args) -> None:
        comm = args[0]
        if comm.remote_group is not None:
            return
        key = (comm.cid, idx)
        rnd = self._barrier_round.get(key, 0)
        self._barrier_round[key] = rnd + 1
        self._barrier_entry.setdefault((comm.cid, rnd), {})[idx] = clock.snapshot()

    def _h_barrier_exit(self, ep, idx, clock, frame, call, args) -> None:
        comm = args[0]
        if comm.remote_group is not None:
            return
        rnd = self._barrier_round.get((comm.cid, idx), 1) - 1
        key = (comm.cid, rnd)
        entries = self._barrier_entry.get(key, {})
        joined = self._barrier_joined.get(key)
        if joined is None:
            joined = vc_round_join(entries.values())
            self._barrier_joined[key] = joined
        self._adopt(idx, clock, entries.get(idx), joined, key)
        exits = self._barrier_exits.get(key, 0) + 1
        if exits >= comm.size:
            self._barrier_entry.pop(key, None)
            self._barrier_exits.pop(key, None)
            self._barrier_joined.pop(key, None)
            self._round_dom.pop(key, None)
        else:
            self._barrier_exits[key] = exits

    # .. RMA synchronization ..

    def _h_fence_entry(self, ep, idx, clock, frame, call, args) -> None:
        win = args[1]
        if self._check_freed(win, ep, "MPI_Win_fence"):
            return
        w = id(win)
        if w not in self._wstate:  # pragma: no cover - defensive
            return
        rnd = self._fence_round[w].get(idx, 0)
        self._fence_round[w][idx] = rnd + 1
        self._fence_entry.setdefault((w, rnd), {})[idx] = clock.snapshot()

    def _h_fence_exit(self, ep, idx, clock, frame, call, args) -> None:
        win = args[1]
        w = id(win)
        if w not in self._wstate or self._wstate[w].get(self._comm_rank(win, ep)) == _FREED:
            return
        rank = self._comm_rank(win, ep)
        self._wstate[w][rank] = _FENCE
        self._fence_open[w].add(rank)
        rnd = self._fence_round[w].get(idx, 1) - 1
        key = (w, rnd)
        entries = self._fence_entry.get(key, {})
        joined = self._fence_joined.get(key)
        if joined is None:
            joined = vc_round_join(entries.values())
            self._fence_joined[key] = joined
        self._adopt(idx, clock, entries.get(idx), joined, key)
        exits = self._fence_exits.get(key, 0) + 1
        if exits >= win.comm.size:
            # an op is ordered before this fence iff its origin issued it
            # before entering round ``rnd`` -- exactly when its recorded
            # fence epoch is <= rnd (every entry stamp flows into the
            # join, and post-round ops carry a fresh own-tick the join
            # cannot contain), so the old per-op vc_leq prune reduces to
            # an integer compare
            ops = self._ops[w]
            for target in list(ops):
                kept = [entry for entry in ops[target] if entry[7] > rnd]
                if kept:
                    ops[target] = kept
                else:
                    del ops[target]
            self._fence_entry.pop(key, None)
            self._fence_exits.pop(key, None)
            self._fence_joined.pop(key, None)
            self._round_dom.pop(key, None)
        else:
            self._fence_exits[key] = exits

    def _h_start_exit(self, ep, idx, clock, frame, call, args) -> None:
        win = args[2]
        w = id(win)
        if w not in self._wstate:
            return
        rank = self._comm_rank(win, ep)
        self._wstate[w][rank] = _START
        self._start_group[w][rank] = tuple(args[0])

    def _h_complete_entry(self, ep, idx, clock, frame, call, args) -> None:
        win = args[0]
        if self._check_freed(win, ep, "MPI_Win_complete"):
            return
        for record in ep.start_records.get(win.win_id, {}).values():
            record._san_complete = vc_join(
                getattr(record, "_san_complete", {}), clock.materialize()
            )

    def _h_complete_exit(self, ep, idx, clock, frame, call, args) -> None:
        win = args[0]
        w = id(win)
        if w not in self._wstate:
            return
        rank = self._comm_rank(win, ep)
        if self._wstate[w].get(rank) == _FREED:
            return
        self._wstate[w][rank] = _FENCE if rank in self._fence_open[w] else _NONE
        self._start_group[w].pop(rank, None)

    def _h_post_entry(self, ep, idx, clock, frame, call, args) -> None:
        self._check_freed(args[2], ep, "MPI_Win_post")

    def _h_post_exit(self, ep, idx, clock, frame, call, args) -> None:
        win = args[2]
        record = ep.post_record.get(win.win_id)
        if record is not None:
            record._san_post = clock.snapshot()

    def _h_wait_entry_win(self, ep, idx, clock, frame, call, args) -> None:
        win = args[0]
        if self._check_freed(win, ep, "MPI_Win_wait"):
            return
        record = ep.post_record.get(win.win_id)
        if record is not None:
            self._wait_rec[id(frame)] = record

    def _h_wait_exit_win(self, ep, idx, clock, frame, call, args) -> None:
        win = args[0]
        w = id(win)
        record = self._wait_rec.pop(id(frame), None)
        if record is None or w not in self._wstate:
            return
        merged = vc_join(clock, getattr(record, "_san_complete", {}))
        self._assign(idx, merged)
        rank = self._comm_rank(win, ep)
        lst = self._ops[w].get(rank)
        if lst:
            kept = [entry for entry in lst if not vc_leq(entry[6], merged)]
            if kept:
                self._ops[w][rank] = kept
            else:
                del self._ops[w][rank]

    def _h_lock_entry(self, ep, idx, clock, frame, call, args) -> None:
        self._check_freed(args[3], ep, "MPI_Win_lock")

    def _h_lock_exit(self, ep, idx, clock, frame, call, args) -> None:
        win = args[3]
        w = id(win)
        if w not in self._wstate:
            return
        mode = "shared" if args[0] == "shared" else "exclusive"
        target = args[1]
        # exclusive serializes with every earlier unlock; shared only with
        # earlier *exclusive* unlocks (shared holders run concurrently)
        prior = self._unlock_all if mode == "exclusive" else self._unlock_excl
        self._assign(idx, vc_join(clock, prior.get((w, target), {})))
        rank = self._comm_rank(win, ep)
        if self._wstate[w].get(rank) != _FREED:
            self._wstate[w][rank] = _LOCK
            self._lock_target[w][rank] = target
            self._lock_mode[(w, rank)] = mode

    def _h_unlock_entry(self, ep, idx, clock, frame, call, args) -> None:
        win = args[1]
        w = id(win)
        if self._check_freed(win, ep, "MPI_Win_unlock") or w not in self._wstate:
            return
        target = args[0]
        rank = self._comm_rank(win, ep)
        mode = self._lock_mode.get((w, rank), "exclusive")
        key = (w, target)
        mat = clock.materialize()
        self._unlock_all[key] = vc_join(self._unlock_all.get(key, {}), mat)
        if mode == "exclusive":
            self._unlock_excl[key] = vc_join(self._unlock_excl.get(key, {}), mat)
            # only an exclusive epoch's own ops are ordered against every
            # later epoch; shared-epoch ops must stay in the race buffer so
            # overlapping shared lockers can still collide
            lst = self._ops[w].get(target)
            if lst:
                kept = [
                    entry
                    for entry in lst
                    if not (entry[0] == idx and vc_leq(entry[6], clock))
                ]
                if kept:
                    self._ops[w][target] = kept
                else:
                    del self._ops[w][target]

    def _h_unlock_exit(self, ep, idx, clock, frame, call, args) -> None:
        win = args[1]
        w = id(win)
        if w not in self._wstate:
            return
        rank = self._comm_rank(win, ep)
        if self._wstate[w].get(rank) == _FREED:
            return
        self._wstate[w][rank] = _FENCE if rank in self._fence_open[w] else _NONE
        self._lock_target[w].pop(rank, None)
        self._lock_mode.pop((w, rank), None)

    def _h_free_entry(self, ep, idx, clock, frame, call, args) -> None:
        self._check_freed(args[0], ep, "MPI_Win_free")

    def _h_free_exit(self, ep, idx, clock, frame, call, args) -> None:
        win = args[0]
        w = id(win)
        # the collective free releases every rank at once, so the first
        # exit sweeps the whole state table and the rest skip it (at
        # thousands of ranks a sweep per rank is quadratic)
        if w in self._wstate and win.freed and w not in self._freed_swept:
            self._freed_swept.add(w)
            for rank in self._wstate[w]:
                self._wstate[w][rank] = _FREED

    def _h_start_entry(self, ep, idx, clock, frame, call, args) -> None:
        self._check_freed(args[2], ep, "MPI_Win_start")

    # -- end-of-run checks ---------------------------------------------------

    def on_deadlock(self) -> None:
        if self.deadlock_reported:
            return
        self.deadlock_reported = True
        self.findings.extend(analyze_deadlock(self.universe, normalize_mpi_name))

    def finalize_checks(self, *, finalized_only: bool = False) -> None:
        """Leak detection.  After a normal completion, check every rank.

        With ``finalized_only=True`` (the deadlock path), check only ranks
        that *entered* MPI_Finalize: those ranks will never complete their
        pending requests or receive their unexpected messages, so their
        leaks are real findings and not an artifact of the deadlock --
        while the still-blocked ranks' state is left alone (their pending
        operations are part of the deadlock diagnosis, not leaks).
        Window checks are skipped in that mode: ``MPI_Win_free`` is
        collective, so a blocked rank elsewhere is enough to keep a window
        allocated through no fault of the finalizing ranks.

        Connected (spawn) intercommunicators are checked in *both* modes.
        ``MPI_Comm_disconnect`` is collective too, but the moment any
        member -- parent or child -- enters MPI_Finalize (or exits) with
        the intercomm still connected, the collective disconnect has
        become permanently impossible: that member's commitment makes the
        leak real regardless of any concurrent deadlock, so a deadlock
        elsewhere must not mask it.
        """
        for idx, ep in enumerate(self._eps):
            if finalized_only and idx not in self._in_finalize:
                continue
            for env in ep.mailbox.unexpected_envelopes():
                if env.tag >= COLL_TAG_BASE or getattr(env, "rma_sink", False):
                    continue
                self._report(
                    FindingKind.UNMATCHED_SEND,
                    ep.world_rank,
                    f"tag {env.tag}",
                    f"message from rank {env.src_rank} (tag {env.tag}, "
                    f"{env.nbytes} bytes) was never received: the send has no "
                    "matching receive",
                )
            pending = self._requests[idx]
            if pending:
                kinds = ", ".join(sorted(kind for kind, _ in pending.values()))
                self._report(
                    FindingKind.REQUEST_LEAK,
                    ep.world_rank,
                    "requests",
                    f"{len(pending)} nonblocking request(s) ({kinds}) never "
                    "completed with MPI_Wait/MPI_Test before MPI_Finalize",
                )
        for comm in self._intercomms:
            if not getattr(comm, "connected", False) or comm.freed:
                continue
            members = list(comm.group) + list(comm.remote_group or [])
            committed = [
                ep
                for ep in members
                if self._ep_index.get(id(ep)) in self._in_finalize
                or ep.proc.exited
            ]
            if finalized_only and not committed:
                # every member is still blocked: the missing disconnect is
                # part of the deadlock diagnosis, not (yet) a leak
                continue
            ranks = ", ".join(
                f"{'child' if comm.remote_group and ep in list(comm.remote_group) else 'parent'} "
                f"rank {ep.world_rank}"
                for ep in committed
            ) or "no member"
            self._report(
                FindingKind.COMM_LEAK,
                -1,
                comm.name,
                f"spawn intercommunicator {comm.name!r} was never "
                f"disconnected: {ranks} reached MPI_Finalize without "
                "calling MPI_Comm_disconnect",
            )
        if finalized_only:
            return
        for win in self._windows:
            if not win.freed:
                self._report(
                    FindingKind.WINDOW_LEAK,
                    -1,
                    win.name,
                    f"window {win.name!r} (id {win.win_id}) was still allocated "
                    "at MPI_Finalize: missing MPI_Win_free",
                )

    # -- results -------------------------------------------------------------

    def trace_digest(self) -> str:
        return self._digest.hexdigest()

    def data_signature(self) -> tuple:
        rows = []
        for idx, ep in enumerate(self._eps):
            c = self._counters[idx]
            rows.append(
                (
                    ep.world.world_id,
                    ep.world_rank,
                    c.sent_msgs,
                    c.sent_bytes,
                    c.recv_msgs,
                    c.recv_bytes,
                    c.puts,
                    c.gets,
                    c.accs,
                    c.rma_bytes,
                )
            )
        return tuple(sorted(rows))


_ENTRY = {
    "Send": Sanitizer._h_send_entry,
    "Ssend": Sanitizer._h_send_entry,
    "Sendrecv": Sanitizer._h_send_entry,
    "Wait": Sanitizer._h_wait_entry,
    "Waitall": Sanitizer._h_waitall_entry,
    "Waitany": Sanitizer._h_waitall_entry,
    "Barrier": Sanitizer._h_barrier_entry,
    "Finalize": Sanitizer._h_finalize_entry,
    "Win_fence": Sanitizer._h_fence_entry,
    "Win_start": Sanitizer._h_start_entry,
    "Win_complete": Sanitizer._h_complete_entry,
    "Win_post": Sanitizer._h_post_entry,
    "Win_wait": Sanitizer._h_wait_entry_win,
    "Win_lock": Sanitizer._h_lock_entry,
    "Win_unlock": Sanitizer._h_unlock_entry,
    "Win_free": Sanitizer._h_free_entry,
}

_EXIT = {
    "Isend": Sanitizer._h_isend_exit,
    "Irecv": Sanitizer._h_irecv_exit,
    "Test": Sanitizer._h_test_exit,
    "Barrier": Sanitizer._h_barrier_exit,
    "Win_fence": Sanitizer._h_fence_exit,
    "Win_start": Sanitizer._h_start_exit,
    "Win_complete": Sanitizer._h_complete_exit,
    "Win_post": Sanitizer._h_post_exit,
    "Win_wait": Sanitizer._h_wait_exit_win,
    "Win_lock": Sanitizer._h_lock_exit,
    "Win_unlock": Sanitizer._h_unlock_exit,
    "Win_free": Sanitizer._h_free_exit,
}
