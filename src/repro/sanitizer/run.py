"""Sanitized program runs: build a universe, attach the monitor, classify.

This mirrors :func:`repro.analysis.runner.run_program`'s cluster shape and
placement but installs the :class:`~repro.sanitizer.core.Sanitizer` *before*
``launch`` (trace hooks must be in place when processes are created) and
maps run outcomes onto a :class:`~repro.sanitizer.findings.SanitizerReport`:

* normal completion -> finalize leak checks run, status from the findings;
* :class:`DeadlockError` -> the kernel deadlock hook already recorded the
  wait-for-graph diagnosis; leak checks still run for ranks that entered
  MPI_Finalize (a deadlock must not mask their request leaks);
* :class:`RmaEpochError` -> folded into an existing epoch/use-after-free
  finding when the sanitizer saw it first, reported standalone otherwise;
* :class:`UnsupportedFeature` -> status "unsupported" (the program simply
  does not run under this personality -- e.g. RMA under MPICH-1);
* any other :class:`MpiError` -> an ``mpi-error`` finding.
"""

from __future__ import annotations

from typing import Optional, Union

from ..analysis.runner import cluster_for
from ..dyninst.image import ImageError
from ..mpi.errors import MpiError, RmaEpochError, UnsupportedFeature
from ..mpi.world import MpiProgram, MpiUniverse
from ..observe.recorder import active as _observe_active  # mode-salt: none
from ..pperfmark.catalog import CLEAN_PROGRAMS, SMALL_PARAMS, resolve_program
from ..sim.kernel import DeadlockError, SimulationError
from .core import Sanitizer
from .findings import Finding, FindingKind, SanitizerReport

# CLEAN_PROGRAMS / SMALL_PARAMS / resolve_program moved to
# repro.pperfmark.catalog (program resolution is mode-agnostic and must not
# drag the sanitizer into tool-mode runs); re-exported here for callers that
# grew up with them in the sanitizer namespace.
__all__ = ["sanitize_program", "CLEAN_PROGRAMS", "SMALL_PARAMS", "resolve_program"]


def sanitize_program(
    program: Union[MpiProgram, str],
    *,
    impl: str = "lam",
    nprocs: Optional[int] = None,
    seed: int = 0,
    until: Optional[float] = None,
    quick: bool = False,
) -> SanitizerReport:
    """Run ``program`` under the sanitizer and classify the outcome."""
    if isinstance(program, str):
        program = resolve_program(program, quick=quick)
    nprocs = nprocs or getattr(program, "default_nprocs", 4)
    rec = _observe_active()
    if rec is not None:
        rec.begin("sanitize.build", program=program.name, impl=impl,
                  nprocs=nprocs, seed=seed)
    procs_per_node = getattr(program, "procs_per_node", 2)
    cluster = cluster_for(nprocs, procs_per_node)
    universe = MpiUniverse(impl=impl, cluster=cluster, seed=seed)
    san = Sanitizer(universe).attach()
    if rec is not None:
        rec.end("sanitize.build")
        rec.begin("sanitize.run", program=program.name, impl=impl)

    placement = []
    per_node = max(1, min(procs_per_node, cluster.nodes[0].num_cpus))
    for rank in range(nprocs):
        node = cluster.nodes[(rank // per_node) % cluster.num_nodes]
        placement.append(node.cpus[rank % per_node])

    report = SanitizerReport(
        program=program.name, impl=impl, nprocs=nprocs, seed=seed
    )
    try:
        universe.launch(program, nprocs, placement=placement)
        universe.run(until=until)
    except UnsupportedFeature as exc:
        report.status = "unsupported"
        report.crash = str(exc)
        san.findings.clear()
    except ImageError as exc:
        # personalities omit unsupported MPI symbols from the image entirely
        # (MPICH-1 has no MPI-2 entry points), so a failed resolve of an
        # MPI_* name is the same "does not run here" outcome
        if "'MPI_" not in str(exc):
            raise
        report.status = "unsupported"
        report.crash = str(exc)
        san.findings.clear()
    except DeadlockError as exc:
        report.crash = str(exc)
        if not san.deadlock_reported:  # pragma: no cover - hook always fires
            san.on_deadlock()
        # ranks that made it into MPI_Finalize before the deadlock have
        # committed their leaks; report them alongside the deadlock
        san.finalize_checks(finalized_only=True)
    except RmaEpochError as exc:
        report.crash = str(exc)
        kinds = {f.kind for f in san.findings}
        if (
            FindingKind.WINDOW_USE_AFTER_FREE not in kinds
            and FindingKind.RMA_EPOCH_VIOLATION not in kinds
        ):
            san.findings.append(
                Finding(
                    kind=FindingKind.RMA_EPOCH_VIOLATION,
                    rank=-1,
                    obj="rma",
                    detail=str(exc),
                )
            )
    except (MpiError, SimulationError) as exc:
        report.crash = str(exc)
        san.findings.append(
            Finding(kind=FindingKind.MPI_ERROR, rank=-1, obj="mpi", detail=str(exc))
        )
    else:
        if all(ep.proc.exited for w in universe.worlds for ep in w.endpoints):
            san.finalize_checks()

    if rec is not None:
        rec.end("sanitize.run", elapsed=universe.kernel.now)
    report.findings = list(san.findings)
    if report.findings:
        report.status = "findings"
    report.trace_digest = san.trace_digest()
    report.data_signature = san.data_signature()
    report.elapsed = universe.kernel.now
    report.events = universe.kernel._seq
    if rec is not None:
        rec.instant("sanitize.classify", status=report.status,
                    findings=len(report.findings), elapsed=report.elapsed)
    return report
