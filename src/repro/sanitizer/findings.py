"""Finding and report types for the MPI correctness sanitizer.

A *finding* is one detected violation of MPI semantics, classified into a
small closed set of kinds (mirroring the MUST / Marmot tool taxonomy).  A
*report* is the result of sanitizing one program run: its status, every
finding, and the run's determinism/differential signatures, which the test
suite reuses for golden-trace and cross-implementation checks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["FindingKind", "Finding", "SanitizerReport"]


class FindingKind(enum.Enum):
    """What class of defect a finding reports."""

    RMA_EPOCH_VIOLATION = "rma-epoch-violation"
    RMA_RACE = "rma-race"
    DEADLOCK = "deadlock"
    UNMATCHED_SEND = "unmatched-send"
    REQUEST_LEAK = "request-leak"
    WINDOW_LEAK = "window-leak"
    COMM_LEAK = "intercomm-leak"
    WINDOW_USE_AFTER_FREE = "window-use-after-free"
    RECV_TRUNCATION = "recv-truncation"
    DATATYPE_MISMATCH = "datatype-mismatch"
    MPI_ERROR = "mpi-error"


@dataclass(frozen=True)
class Finding:
    """One detected violation.

    ``rank`` is the world rank the finding is attributed to (or -1 when it
    spans processes, e.g. a deadlock cycle); ``obj`` names the MPI object
    involved (window, communicator, tag...) and ``detail`` is the full
    human-readable diagnosis.
    """

    kind: FindingKind
    rank: int
    obj: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - debug aid
        where = f"rank {self.rank}" if self.rank >= 0 else "global"
        return f"[{self.kind.value}] {where} {self.obj}: {self.detail}"


@dataclass
class SanitizerReport:
    """Everything produced by sanitizing one run."""

    program: str
    impl: str
    nprocs: int
    seed: int
    #: "clean" | "findings" | "unsupported"
    status: str = "clean"
    findings: list[Finding] = field(default_factory=list)
    #: exception message when the run died (deadlock / MPI error), if any
    crash: Optional[str] = None
    #: sha256 over the ordered (time, rank, function, entry/exit) event
    #: stream -- equal digests mean identical schedules (determinism tests)
    trace_digest: str = ""
    #: implementation-independent application-data signature (message and
    #: RMA counts/bytes per rank) -- equal across impls for the same program
    data_signature: Any = None
    elapsed: float = 0.0
    #: total kernel callbacks scheduled over the run -- a deterministic
    #: simulation-size measure (scaling benches divide it by wall clock)
    events: int = 0

    @property
    def clean(self) -> bool:
        return self.status == "clean" and not self.findings

    def kinds(self) -> set[FindingKind]:
        return {f.kind for f in self.findings}

    def by_kind(self, kind: FindingKind) -> list[Finding]:
        return [f for f in self.findings if f.kind is kind]
