"""Vector clocks for RMA happens-before tracking: sparse dicts + COW stamps.

Clocks are conceptually ``dict[int, int]`` keyed by a stable per-endpoint
index (assigned by the sanitizer at process creation, so spawned worlds --
where world ranks repeat -- still get distinct components).  Missing keys
are zero.

Two representations share that meaning:

* plain ``dict`` -- the classic form; also the *interned* result of a
  global synchronization round (barrier/fence), shared by reference
  across every participating rank;
* :class:`CowClock` -- a copy-on-write overlay ``(base, delta)`` where
  ``base`` is a shared dict that is never mutated and ``delta`` holds the
  rank's private increments since the last join.  Ticking is O(1); taking
  a stamp (:meth:`CowClock.snapshot`) is O(1) and freezes the delta so
  the stamp stays immutable.  Invariant: every ``delta`` value is >= the
  ``base`` value for that key (deltas only ever come from ticks and
  component-wise maxima), so overlay == join and two clocks sharing a
  base can be compared on their deltas alone -- the "epoch fast path"
  that makes race checks O(1) after a synchronization round.

The comparison functions below accept either representation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

__all__ = ["CowClock", "vc_join", "vc_leq", "vc_concurrent", "vc_round_join"]

VClock = Union[dict, "CowClock"]


class CowClock:
    """A copy-on-write vector clock: shared ``base`` + private ``delta``."""

    __slots__ = ("base", "delta", "frozen")

    def __init__(self, base: dict, delta: dict | None = None, frozen: bool = False) -> None:
        self.base = base
        self.delta = {} if delta is None else delta
        self.frozen = frozen

    def get(self, key: int, default: int = 0) -> int:
        value = self.delta.get(key)
        if value is not None:
            return value
        return self.base.get(key, default)

    def items(self) -> Iterator[tuple[int, int]]:
        delta = self.delta
        if not delta:
            yield from self.base.items()
            return
        base = self.base
        for key, value in base.items():
            dv = delta.get(key)
            yield key, (dv if dv is not None else value)
        for key, value in delta.items():
            if key not in base:
                yield key, value

    def tick(self, key: int) -> int:
        """Increment one component in place (copy-on-write if frozen)."""
        if self.frozen:
            self.delta = dict(self.delta)
            self.frozen = False
        value = self.get(key) + 1
        self.delta[key] = value
        return value

    def snapshot(self) -> "CowClock":
        """An immutable stamp of the current value, O(1): the stamp shares
        this clock's delta and both are frozen, so the owner's next tick
        copies the (small) delta instead of the whole clock."""
        self.frozen = True
        return CowClock(self.base, self.delta, True)

    def materialize(self) -> dict:
        """The clock as a plain dict.  With an empty delta this returns the
        shared base itself -- callers must treat the result as read-only."""
        if not self.delta:
            return self.base
        out = dict(self.base)
        out.update(self.delta)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CowClock base={len(self.base)} delta={self.delta!r}>"


def vc_join(a: VClock, b: VClock) -> VClock:
    """Component-wise maximum (the least upper bound of two clocks).

    Returns ``a`` itself when ``b <= a`` (callers never mutate joins, so
    the allocation -- and at scale, the O(ranks) copy -- is skipped), and
    symmetrically ``b`` when ``a`` is empty."""
    if a is b:
        return a
    if not a:
        return b
    out = None
    for k, v in b.items():
        if v > (out.get(k, 0) if out is not None else a.get(k, 0)):
            if out is None:
                out = dict(a.materialize()) if type(a) is CowClock else dict(a)
            out[k] = v
    return a if out is None else out


def vc_leq(a: VClock, b: VClock) -> bool:
    """True when ``a`` happened-before-or-equals ``b`` (a <= b pointwise)."""
    if a is b:
        return True
    if type(a) is CowClock and type(b) is CowClock and a.base is b.base:
        # shared base: components outside a.delta satisfy a[k] == base[k]
        # <= b[k] by the delta >= base invariant
        bget = b.get
        return all(v <= bget(k, 0) for k, v in a.delta.items())
    bget = b.get
    return all(v <= bget(k, 0) for k, v in a.items())


def vc_concurrent(a: VClock, b: VClock) -> bool:
    """Neither clock ordered before the other: a genuine race candidate."""
    if a is b:
        return False
    if type(a) is CowClock and type(b) is CowClock and a.base is b.base:
        # epoch fast path: same synchronization round -> compare only the
        # private increments since the shared joined clock
        da, db = a.delta, b.delta
        a_ahead = b_ahead = False
        base_get = a.base.get
        for k in da.keys() | db.keys():
            va = da.get(k)
            vb = db.get(k)
            if va is None:
                va = base_get(k, 0)
            if vb is None:
                vb = base_get(k, 0)
            if va > vb:
                a_ahead = True
            elif vb > va:
                b_ahead = True
            if a_ahead and b_ahead:
                return True
        return False
    return not vc_leq(a, b) and not vc_leq(b, a)


def vc_round_join(stamps: Iterable[VClock]) -> dict:
    """Join a synchronization round's entry stamps into one plain dict.

    The result is the round's *interned* clock: every exiting rank adopts
    it as a shared CowClock base, so thousands of ranks reference one
    dict.  When every stamp is a CowClock over the same base (the steady
    state: all ranks joined at the previous round), the join is
    O(sum of delta sizes) -- copy the base once, overlay every delta.
    Mixed bases (first round, sub-communicators, spawned worlds) fall back
    to the generic component-wise maximum.
    """
    stamps = list(stamps)
    base = None
    for stamp in stamps:
        if type(stamp) is not CowClock:
            base = None
            break
        if base is None:
            base = stamp.base
        elif stamp.base is not base:
            base = None
            break
    if base is not None:
        out = dict(base)
        get = out.get
        for stamp in stamps:
            for k, v in stamp.delta.items():
                if v > get(k, 0):
                    out[k] = v
                    get = out.get
        return out
    out: dict = {}
    get = out.get
    for stamp in stamps:
        for k, v in stamp.items():
            if v > get(k, 0):
                out[k] = v
                get = out.get
    return out
