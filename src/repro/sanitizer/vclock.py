"""Vector clocks over sparse dicts, for RMA happens-before tracking.

Clocks are ``dict[int, int]`` keyed by a stable per-endpoint index (assigned
by the sanitizer at process creation, so spawned worlds -- where world ranks
repeat -- still get distinct components).  Missing keys are zero.
"""

from __future__ import annotations

__all__ = ["vc_join", "vc_leq", "vc_concurrent"]


def vc_join(a: dict[int, int], b: dict[int, int]) -> dict[int, int]:
    """Component-wise maximum (the least upper bound of two clocks)."""
    out = dict(a)
    for k, v in b.items():
        if v > out.get(k, 0):
            out[k] = v
    return out


def vc_leq(a: dict[int, int], b: dict[int, int]) -> bool:
    """True when ``a`` happened-before-or-equals ``b`` (a <= b pointwise)."""
    return all(v <= b.get(k, 0) for k, v in a.items())


def vc_concurrent(a: dict[int, int], b: dict[int, int]) -> bool:
    """Neither clock ordered before the other: a genuine race candidate."""
    return not vc_leq(a, b) and not vc_leq(b, a)
