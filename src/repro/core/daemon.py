"""The tool daemon (paradynd): attaches, instruments, samples, detects.

One daemon runs per cluster node and is assigned the application processes
on that node (Section 4 of the paper).  Its jobs here:

* **attach**: walk a new process's image into the Code hierarchy, install
  the instrumentation-runtime builtins (``MPI_Type_size``,
  ``DYNINSTWindow_FindUniqueId``, ``DYNINSTCommId``), and insert the
  *detection* snippets -- ``MPI_Win_create``/``MPI_Win_free`` return-point
  hooks for dynamic window discovery and retirement (Section 4.2.1), and
  name-change hooks for MPI-2 object naming (Section 4.2.3);
* **instrument**: instantiate metric-focus pairs through the MDL compiler;
* **sample**: read every active counter/timer each sample interval and
  forward deltas to the front end's histograms.

The per-snippet perturbation cost models the intrusion dynamic
instrumentation adds to the mutatee.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from ..dyninst.mutator import Mutator
from ..dyninst.snippets import Arg, BuiltinCall, ExprStmt, ReturnValue, Snippet
from .frontend import Frontend, MetricFocusData, NativeInstance
from .mdl import MdlCompileError, instantiate_metric
from .resources import Focus

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Kernel
    from ..sim.process import SimProcess

__all__ = ["Daemon"]


class Daemon:
    """paradynd for one node."""

    def __init__(
        self,
        frontend: Frontend,
        kernel: "Kernel",
        node_name: str,
        *,
        mpi_implementation: str = "",
        sample_interval: Optional[float] = None,
        snippet_cost: float = 0.0,
    ) -> None:
        self.frontend = frontend
        self.kernel = kernel
        self.node_name = node_name
        #: the optional daemon attribute added in Section 4.1 so one tool
        #: session can drive either LAM or MPICH on non-shared filesystems.
        self.mpi_implementation = mpi_implementation
        self.sample_interval = sample_interval or frontend.bin_width
        self.snippet_cost = snippet_cost
        self.procs: list[Any] = []
        #: identity set mirroring ``procs`` -- membership tests on the
        #: per-sample hot path must not scan the list
        self._proc_set: set[int] = set()
        #: the subset of ``procs`` the sampler still walks.  ``procs`` and
        #: ``_proc_set`` record every attach forever (tool-facing state);
        #: exited processes leave these live structures right after the
        #: sample pass that reads their final deltas, so steady-state
        #: sampling is O(live processes), not O(ever attached)
        self._live: list[Any] = []
        self._live_set: set[int] = set()
        #: procs whose exit hook fired since the last sample pass
        self._exited_pending: list[Any] = []
        self.mutators: dict[int, Mutator] = {}
        self._sampling = False
        #: proc-major batched reads on the sample path (one pass per process
        #: over its bound instances, plan cached between structural changes);
        #: clear to fall back to the pair-major scan
        self.batched_sampling = True
        self._sample_plan: Optional[list] = None
        frontend.add_daemon(self)

    # ------------------------------------------------------------------ attach

    def attach(self, proc: "SimProcess") -> None:
        """Attach to a process: resources, builtins, detection snippets."""
        if proc.node.name != self.node_name:
            raise ValueError(
                f"daemon on {self.node_name} asked to attach pid {proc.pid} "
                f"on {proc.node.name}"
            )
        self.procs.append(proc)
        self._proc_set.add(id(proc))
        self._live.append(proc)
        self._live_set.add(id(proc))
        proc.snippet_cost = self.snippet_cost
        mutator = Mutator(proc)
        self.mutators[proc.pid] = mutator

        # retirement: exited processes gray out and leave the PC search;
        # the daemon stops sampling them after one final post-exit pass
        def on_exit(exited_proc, _daemon=self):
            node_path = f"/Machine/{exited_proc.node.name}/pid{exited_proc.pid}"
            hierarchy = _daemon.frontend.hierarchy
            if hierarchy.exists(node_path):
                hierarchy.retire(hierarchy.find(node_path))
            _daemon._exited_pending.append(exited_proc)

        proc.exit_hooks.append(on_exit)

        # Code hierarchy: modules and functions from the symbol table.
        for fn in proc.image.app_functions():
            self.frontend.hierarchy.add_function(fn.module.name, fn.name)
        # MPI entry points are interesting refinement targets too.
        for fn in proc.image.functions():
            if "mpi" in fn.tags:
                self.frontend.hierarchy.add_function(fn.module.name, fn.name)
        self.frontend.report_new_process(proc)

        # instrumentation-runtime builtins
        mutator.register_builtin("MPI_Type_size", lambda p, f, dtype: dtype.size)
        mutator.register_builtin("DYNINSTCommId", lambda p, f, comm: comm.cid)
        mutator.register_builtin(
            "DYNINSTWindow_FindUniqueId",
            lambda p, f, win: self.frontend.window_uid(win),
        )
        mutator.register_builtin(
            "DYNINSTReportNewWindow",
            lambda p, f, win: self.frontend.report_new_window(win),
        )
        mutator.register_builtin(
            "DYNINSTReportWindowFreed",
            lambda p, f, win: self.frontend.report_window_freed(win),
        )
        mutator.register_builtin(
            "DYNINSTReportName",
            lambda p, f, obj, name: self.frontend.report_name_change(obj, name),
        )
        mutator.register_builtin(
            "DYNINSTReportTag",
            lambda p, f, comm, tag: self.frontend.report_tag(comm, tag),
        )

        self._install_detection(mutator)
        self.invalidate_sample_plan()
        self._ensure_sampling()

    def _install_detection(self, mutator: Mutator) -> None:
        """Window discovery/retirement and naming hooks (Sections 4.2.1/4.2.3)."""
        handle = mutator.handle(label="detection")

        def hook(builtin: str, *args) -> Snippet:
            return Snippet([ExprStmt(BuiltinCall(builtin, args))], label=f"detect:{builtin}")

        mutator.insert_if_present(
            handle, "MPI_Win_create", "return",
            hook("DYNINSTReportNewWindow", ReturnValue()),
        )
        mutator.insert_if_present(
            handle, "MPI_Win_free", "entry",
            hook("DYNINSTReportWindowFreed", Arg(0)),
        )
        mutator.insert_if_present(
            handle, "MPI_Win_set_name", "return",
            hook("DYNINSTReportName", Arg(0), Arg(1)),
        )
        mutator.insert_if_present(
            handle, "MPI_Comm_set_name", "return",
            hook("DYNINSTReportName", Arg(0), Arg(1)),
        )
        # message-tag discovery: one resource per (communicator, tag) seen
        for fname in ("MPI_Send", "MPI_Isend"):
            mutator.insert_if_present(
                handle, fname, "entry", hook("DYNINSTReportTag", Arg(5), Arg(4))
            )
        mutator.insert_if_present(
            handle, "MPI_Sendrecv", "entry", hook("DYNINSTReportTag", Arg(10), Arg(4))
        )

    # --------------------------------------------------------------- instrument

    def instrument_pair(self, data: MetricFocusData) -> None:
        """Instantiate a metric-focus pair on this daemon's matching processes."""
        for proc in self.frontend.procs_matching(data.focus):
            if id(proc) in self._proc_set:
                self.instrument_proc(data, proc)

    def instrument_proc(self, data: MetricFocusData, proc: "SimProcess") -> None:
        if any(getattr(inst, "proc", None) is proc for inst in data.instances):
            return  # already instrumented (re-attach path)
        if self.frontend.is_native(data.metric_name):
            sampler = self.frontend.native_sampler(data.metric_name)
            instance: Any = NativeInstance(
                metric_name=data.metric_name,
                focus=data.focus,
                proc=proc,
                sampler=sampler,
            )
            instance._last = sampler(proc)
        else:
            mutator = self.mutators[proc.pid]
            instance = instantiate_metric(
                self.frontend.library, data.metric_name, data.focus, mutator
            )
        data.instances.append(instance)
        self.invalidate_sample_plan()

    # ------------------------------------------------------------------- sample

    def invalidate_sample_plan(self) -> None:
        """Drop the cached proc-major read plan; the next sample pass
        rebuilds it.  Called on every structural change: attach, new
        instrumentation, pair disable, process retirement."""
        self._sample_plan = None

    def _build_sample_plan(self) -> list:
        """Group every live (pair, instance) binding by process, in the
        daemon's live-process order with pair order preserved within each
        process.  Rebuilt only when instrumentation or process membership
        changes, so steady-state sampling walks one flat list per process
        instead of re-filtering every pair's instance list each tick."""
        by_proc: dict[int, list] = {id(proc): [] for proc in self._live}
        for data in self.frontend.enabled.values():
            if not data.active:
                continue
            for instance in data.instances:
                entries = by_proc.get(id(instance.proc))
                if entries is not None:
                    entries.append((data, instance))
        return [
            (proc, by_proc[id(proc)]) for proc in self._live if by_proc[id(proc)]
        ]

    def _ensure_sampling(self) -> None:
        if not self._sampling:
            self._sampling = True
            self.kernel.schedule(self.sample_interval, self._sample_tick)

    def _current_interval(self) -> float:
        """Sampling interval, coupled to histogram folding as in Paradyn:
        when bins double (long runs), sampling slows down with them -- the
        constant-memory property extends to a constant data *rate*."""
        max_folds = 0
        for data in self.frontend.enabled.values():
            if data.active and data.max_folds > max_folds:
                max_folds = data.max_folds
        return self.sample_interval * (2 ** max_folds)

    def _sample_tick(self) -> None:
        now = self.kernel.now
        interval = self._current_interval()
        # a delta sampled at t covers (t - interval, t]; record it at the
        # midpoint so histogram bins line up with when the work happened
        self.sample_now(now, record_at=now - interval / 2.0)
        if self._live:
            self.kernel.schedule(self._current_interval(), self._sample_tick)
        else:
            self._sampling = False

    def sample_now(self, now: float, record_at: float = None) -> None:
        """Read all active instrumentation on this daemon's processes.

        The whole batch of metric reads happens in one pass with the loop
        invariants hoisted: constant-time membership via the identity set,
        one ``when`` computation per pair, no per-instance attribute
        re-lookup.  Sampling runs once per process per interval for every
        enabled pair, so this is the tool-overhead hot path the paper's
        cost model is about."""
        if record_at is None:
            record_at = now
        observe = self.frontend.cost_tracker.observe
        for proc in self._live:
            if not proc.exited:
                observe(proc, now)
        if self.batched_sampling:
            # proc-major: each process's bound instances read back to back
            # from the cached plan.  Reordering the reads is histogram-safe:
            # every (pair, pid) owns its own FoldingHistogram and gets
            # exactly one delta per pass, so the bytes match the pair-major
            # scan bin for bin.
            plan = self._sample_plan
            if plan is None:
                plan = self._sample_plan = self._build_sample_plan()
            whens: dict[int, float] = {}
            for proc, entries in plan:
                pid = proc.pid
                for data, instance in entries:
                    when = whens.get(id(data))
                    if when is None:
                        enabled_at = data.enabled_at
                        when = record_at if record_at > enabled_at else enabled_at
                        whens[id(data)] = when
                    delta = instance.sample_delta()
                    if delta:
                        data.record(pid, when, delta)
        else:
            proc_set = self._live_set
            for data in self.frontend.enabled.values():
                if not data.active:
                    continue
                instances = data.instances
                if not instances:
                    continue
                enabled_at = data.enabled_at
                when = record_at if record_at > enabled_at else enabled_at
                record = data.record
                for instance in instances:
                    proc = instance.proc
                    if id(proc) not in proc_set:
                        continue
                    delta = instance.sample_delta()
                    if delta:
                        record(proc.pid, when, delta)
        if self._exited_pending:
            # this pass read the final deltas of freshly-exited procs
            # (recorded at the same tick the always-scan used to record
            # them); from the next pass on they cost nothing
            for proc in self._exited_pending:
                if id(proc) in self._live_set:
                    self._live_set.discard(id(proc))
                    self._live.remove(proc)
            self._exited_pending.clear()
            self.invalidate_sample_plan()
