"""Built-in metric definitions (MDL source) and the metric registry.

This module carries the tool's default metric set, written in MDL and
compiled by :mod:`repro.core.mdl`:

* the MPI-1 metrics (synchronization wait times, message/byte counters,
  I/O blocking time) with both ``MPI_*`` and ``PMPI_*`` function names --
  the paper's Section 4.1.1 fix for MPICH's weak-symbol profiling interface
  (the *legacy* variant below reproduces the Paradyn 4.0 bug for the
  ablation bench);
* **all twelve RMA metrics of Table 1** and the window resource constraint
  of Figure 2;
* a handful of *native* metrics (whole-process CPU, wall time) sampled
  directly from process clocks rather than via snippets.

Function sets deliberately include names for every supported MPI
implementation; the compiler skips names not present in a given image and
de-duplicates weak aliases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .mdl import MdlLibrary

__all__ = [
    "DEFAULT_MDL",
    "LEGACY_MDL_OVERRIDES",
    "NATIVE_METRICS",
    "RMA_METRIC_NAMES",
    "TABLE1_ROWS",
    "build_library",
    "native_sampler",
]


def _both(*names: str) -> str:
    """A funcset body listing each name plus its PMPI twin."""
    out = []
    for name in names:
        out.append(name)
        out.append("P" + name)
    return ", ".join(out)


#: The names of the twelve RMA metrics introduced by the paper (Table 1).
RMA_METRIC_NAMES = (
    "rma_put_ops",
    "rma_get_ops",
    "rma_acc_ops",
    "rma_ops",
    "rma_put_bytes",
    "rma_get_bytes",
    "rma_acc_bytes",
    "rma_bytes",
    "at_rma_sync_wait",
    "pt_rma_sync_wait",
    "rma_sync_wait",
    "rma_sync_ops",
)

#: (metric, description, functions) rows regenerating Table 1 of the paper.
TABLE1_ROWS = (
    ("rma_put_ops", "A count of the number of Put operations per unit time.", "MPI_Put"),
    ("rma_get_ops", "A count of the number of Get operations per unit time.", "MPI_Get"),
    ("rma_acc_ops", "A count of the number of Accumulate operations per unit time.", "MPI_Accumulate"),
    ("rma_ops", "A count of the number of Put, Get, and Accumulate operations per unit time.",
     "MPI_Put MPI_Get MPI_Accumulate"),
    ("rma_put_bytes", "Number of bytes put per unit time.", "MPI_Put"),
    ("rma_get_bytes", "Number of bytes gotten per unit time.", "MPI_Get"),
    ("rma_acc_bytes", "Number of bytes accumulated in the target process.", "MPI_Accumulate"),
    ("rma_bytes", "Sum of RMA byte count metrics.", "MPI_Put MPI_Get MPI_Accumulate"),
    ("at_rma_sync_wait", "Wall clock time spent in active target RMA synchronization routines "
     "during time interval.", "MPI_Win_fence MPI_Win_start MPI_Win_complete MPI_Win_wait"),
    ("pt_rma_sync_wait", "Wall clock time spent in passive target RMA synchronization routines "
     "during time interval.", "MPI_Win_lock MPI_Win_unlock"),
    ("rma_sync_wait", "Wall clock time spent in RMA synchronization routines during time interval.",
     "MPI_Win_fence MPI_Win_create MPI_Win_free MPI_Win_start MPI_Win_complete MPI_Win_wait "
     "MPI_Win_lock MPI_Win_unlock MPI_Put MPI_Get MPI_Accumulate"),
    ("rma_sync_ops", "A count of the number of RMA synchronization operations per unit time.",
     "MPI_Win_fence MPI_Win_create MPI_Win_free MPI_Win_start MPI_Win_complete MPI_Win_wait "
     "MPI_Win_lock MPI_Win_unlock MPI_Put MPI_Get MPI_Accumulate"),
)


_FUNCSETS = f"""
// ---- function sets ---------------------------------------------------------
funcset mpi_put = {{ {_both("MPI_Put")} }};
funcset mpi_get = {{ {_both("MPI_Get")} }};
funcset mpi_acc = {{ {_both("MPI_Accumulate")} }};
funcset mpi_rma_data = {{ {_both("MPI_Put", "MPI_Get", "MPI_Accumulate")} }};
funcset mpi_at_rma_sync = {{ {_both("MPI_Win_fence", "MPI_Win_start", "MPI_Win_complete", "MPI_Win_wait")} }};
funcset mpi_pt_rma_sync = {{ {_both("MPI_Win_lock", "MPI_Win_unlock")} }};
funcset mpi_rma_sync_general = {{ {_both(
    "MPI_Win_fence", "MPI_Win_create", "MPI_Win_free",
    "MPI_Win_start", "MPI_Win_complete", "MPI_Win_wait",
    "MPI_Win_lock", "MPI_Win_unlock",
    "MPI_Put", "MPI_Get", "MPI_Accumulate")} }};
funcset mpi_win_arg0 = {{ {_both("MPI_Win_complete", "MPI_Win_wait", "MPI_Win_free")} }};
funcset mpi_win_arg1 = {{ {_both("MPI_Win_fence", "MPI_Win_unlock")} }};
funcset mpi_win_arg2 = {{ {_both("MPI_Win_start", "MPI_Win_post")} }};
funcset mpi_win_arg3 = {{ {_both("MPI_Win_lock")} }};
funcset mpi_win_arg7 = {{ {_both("MPI_Put", "MPI_Get")} }};
funcset mpi_win_arg8 = {{ {_both("MPI_Accumulate")} }};
funcset mpi_win_creators = {{ {_both("MPI_Win_create")} }};

funcset mpi_send_fns = {{ {_both("MPI_Send", "MPI_Isend", "MPI_Sendrecv", "MPI_Ssend")} }};
funcset mpi_recv_fns = {{ {_both("MPI_Recv", "MPI_Irecv")} }};
funcset mpi_p2p_sync = {{ {_both(
    "MPI_Send", "MPI_Recv", "MPI_Sendrecv", "MPI_Wait", "MPI_Waitall")} }};
funcset mpi_coll_sync = {{ {_both(
    "MPI_Barrier", "MPI_Bcast", "MPI_Reduce", "MPI_Allreduce")} }};
funcset mpi_barrier_fns = {{ {_both("MPI_Barrier")} }};
funcset mpi_msg_sync = {{ {_both(
    "MPI_Send", "MPI_Recv", "MPI_Sendrecv", "MPI_Ssend", "MPI_Wait", "MPI_Waitall",
    "MPI_Waitany", "MPI_Probe", "MPI_Bcast", "MPI_Reduce", "MPI_Allreduce",
    "MPI_Gather", "MPI_Scatter", "MPI_Allgather", "MPI_Alltoall")} }};
funcset mpi_all_sync = {{ {_both(
    "MPI_Send", "MPI_Recv", "MPI_Sendrecv", "MPI_Ssend", "MPI_Wait", "MPI_Waitall",
    "MPI_Waitany", "MPI_Probe", "MPI_Barrier", "MPI_Bcast", "MPI_Reduce", "MPI_Allreduce",
    "MPI_Gather", "MPI_Scatter", "MPI_Allgather", "MPI_Alltoall",
    "MPI_Win_fence", "MPI_Win_start", "MPI_Win_complete", "MPI_Win_wait",
    "MPI_Win_lock", "MPI_Win_unlock", "MPI_Win_create", "MPI_Win_free",
    "MPI_Comm_spawn", "MPI_Intercomm_merge")} }};
funcset mpi_spawn_fns = {{ {_both("MPI_Comm_spawn")} }};
funcset mpi_comm_arg5 = {{ {_both("MPI_Send", "MPI_Isend", "MPI_Recv", "MPI_Irecv", "MPI_Ssend")} }};
funcset mpi_comm_arg10 = {{ {_both("MPI_Sendrecv")} }};
funcset mpi_comm_arg0 = {{ {_both("MPI_Barrier")} }};
funcset mpi_comm_arg4 = {{ {_both("MPI_Bcast")} }};
funcset mpi_comm_arg6 = {{ {_both("MPI_Reduce")} }};
funcset mpi_comm_arg5r = {{ {_both("MPI_Allreduce")} }};
funcset mpi_tag_p2p = {{ {_both("MPI_Send", "MPI_Isend", "MPI_Recv", "MPI_Irecv", "MPI_Ssend")} }};
funcset mpi_tag_sendrecv = {{ {_both("MPI_Sendrecv")} }};
funcset io_fns = {{ read, write }};
funcset io_fns_extended = {{ read, write, readv, writev }};
funcset mpi_io_fns = {{ {_both(
    "MPI_File_open", "MPI_File_close", "MPI_File_write_at", "MPI_File_read_at")} }};
funcset mpi_io_write_fns = {{ {_both("MPI_File_write_at")} }};
funcset mpi_io_read_fns = {{ {_both("MPI_File_read_at")} }};
"""


_CONSTRAINTS = """
// ---- resource constraints --------------------------------------------------

// The RMA window constraint of Figure 2: flag while executing an MPI_Win
// routine whose window argument matches the focused window's unique id.
constraint mpi_windowConstraint /SyncObject/Window is counter {
    foreach func in mpi_win_arg7 {
        prepend preinsn func.entry (*
            if (DYNINSTWindow_FindUniqueId($arg[7]) == $constraint[0]) mpi_windowConstraint = 1;
        *)
        append preinsn func.return (* mpi_windowConstraint = 0; *)
    }
    foreach func in mpi_win_arg8 {
        prepend preinsn func.entry (*
            if (DYNINSTWindow_FindUniqueId($arg[8]) == $constraint[0]) mpi_windowConstraint = 1;
        *)
        append preinsn func.return (* mpi_windowConstraint = 0; *)
    }
    foreach func in mpi_win_arg0 {
        prepend preinsn func.entry (*
            if (DYNINSTWindow_FindUniqueId($arg[0]) == $constraint[0]) mpi_windowConstraint = 1;
        *)
        append preinsn func.return (* mpi_windowConstraint = 0; *)
    }
    foreach func in mpi_win_arg1 {
        prepend preinsn func.entry (*
            if (DYNINSTWindow_FindUniqueId($arg[1]) == $constraint[0]) mpi_windowConstraint = 1;
        *)
        append preinsn func.return (* mpi_windowConstraint = 0; *)
    }
    foreach func in mpi_win_arg2 {
        prepend preinsn func.entry (*
            if (DYNINSTWindow_FindUniqueId($arg[2]) == $constraint[0]) mpi_windowConstraint = 1;
        *)
        append preinsn func.return (* mpi_windowConstraint = 0; *)
    }
    foreach func in mpi_win_arg3 {
        prepend preinsn func.entry (*
            if (DYNINSTWindow_FindUniqueId($arg[3]) == $constraint[0]) mpi_windowConstraint = 1;
        *)
        append preinsn func.return (* mpi_windowConstraint = 0; *)
    }
}

// Communicator constraint: flag while inside an MPI call on the focused
// communicator (argument position varies by routine).
constraint mpi_communicatorConstraint /SyncObject/Message is counter {
    foreach func in mpi_comm_arg5 {
        prepend preinsn func.entry (*
            if (DYNINSTCommId($arg[5]) == $constraint[0]) mpi_communicatorConstraint = 1;
        *)
        append preinsn func.return (* mpi_communicatorConstraint = 0; *)
    }
    foreach func in mpi_comm_arg10 {
        prepend preinsn func.entry (*
            if (DYNINSTCommId($arg[10]) == $constraint[0]) mpi_communicatorConstraint = 1;
        *)
        append preinsn func.return (* mpi_communicatorConstraint = 0; *)
    }
    foreach func in mpi_comm_arg0 {
        prepend preinsn func.entry (*
            if (DYNINSTCommId($arg[0]) == $constraint[0]) mpi_communicatorConstraint = 1;
        *)
        append preinsn func.return (* mpi_communicatorConstraint = 0; *)
    }
    foreach func in mpi_comm_arg4 {
        prepend preinsn func.entry (*
            if (DYNINSTCommId($arg[4]) == $constraint[0]) mpi_communicatorConstraint = 1;
        *)
        append preinsn func.return (* mpi_communicatorConstraint = 0; *)
    }
    foreach func in mpi_comm_arg6 {
        prepend preinsn func.entry (*
            if (DYNINSTCommId($arg[6]) == $constraint[0]) mpi_communicatorConstraint = 1;
        *)
        append preinsn func.return (* mpi_communicatorConstraint = 0; *)
    }
    foreach func in mpi_comm_arg5r {
        prepend preinsn func.entry (*
            if (DYNINSTCommId($arg[5]) == $constraint[0]) mpi_communicatorConstraint = 1;
        *)
        append preinsn func.return (* mpi_communicatorConstraint = 0; *)
    }
}

// Message-tag constraint (focus /SyncObject/Message/comm_N/tag_T).  The
// communicator argument position differs between plain point-to-point
// calls (arg 5) and MPI_Sendrecv (arg 11); the send tag is arg 4 in both.
constraint mpi_msgtagConstraint /SyncObject/Message is counter {
    foreach func in mpi_tag_p2p {
        prepend preinsn func.entry (*
            if ((DYNINSTCommId($arg[5]) == $constraint[0]) && ($arg[4] == $constraint[1]))
                mpi_msgtagConstraint = 1;
        *)
        append preinsn func.return (* mpi_msgtagConstraint = 0; *)
    }
    foreach func in mpi_tag_sendrecv {
        prepend preinsn func.entry (*
            if ((DYNINSTCommId($arg[10]) == $constraint[0]) && ($arg[4] == $constraint[1]))
                mpi_msgtagConstraint = 1;
        *)
        append preinsn func.return (* mpi_msgtagConstraint = 0; *)
    }
}

// Code-hierarchy constraints: flag while inside the focused function /
// module.  Depth-counted, not set/cleared: a module constraint covers
// several functions at once, and a helper's return must not clear the
// flag the still-live main() activation established.  The guard on the
// decrement tolerates instrumentation inserted mid-flight (a return
// without a counted entry).
constraint procedureConstraint /Code is counter {
    foreach func in constraint_target {
        prepend preinsn func.entry (* procedureConstraint = procedureConstraint + 1; *)
        append preinsn func.return (*
            if (procedureConstraint > 0) procedureConstraint = procedureConstraint - 1;
        *)
    }
}

constraint moduleConstraint /Code is counter {
    foreach func in module_functions {
        prepend preinsn func.entry (* moduleConstraint = moduleConstraint + 1; *)
        append preinsn func.return (*
            if (moduleConstraint > 0) moduleConstraint = moduleConstraint - 1;
        *)
    }
}
"""


def _counter_metric(
    ident: str,
    display: str,
    units: str,
    blocks: str,
    *,
    constraints: tuple[str, ...] = ("moduleConstraint", "procedureConstraint"),
    counters: tuple[str, ...] = (),
) -> str:
    constraint_lines = "\n".join(f"    constraint {c};" for c in constraints)
    counter_lines = "\n".join(f"    counter {c};" for c in counters)
    return f"""
metric {ident} {{
    name "{display}";
    units {units};
    unitsType unnormalized;
    aggregateOperator sum;
    style EventCounter;
    flavor {{ mpi }};
{constraint_lines}
{counter_lines}
    base is counter {{
{blocks}
    }}
}}
"""


def _walltimer_metric(
    ident: str,
    display: str,
    funcsets: tuple[str, ...],
    *,
    constraints: tuple[str, ...] = ("moduleConstraint", "procedureConstraint"),
) -> str:
    constraint_lines = "\n".join(f"    constraint {c};" for c in constraints)
    blocks = "\n".join(
        f"""        foreach func in {fs} {{
            append preinsn func.entry constrained (* startWallTimer({ident}); *)
            prepend preinsn func.return constrained (* stopWallTimer({ident}); *)
        }}"""
        for fs in funcsets
    )
    return f"""
metric {ident} {{
    name "{display}";
    units CPUs;
    unitsType normalized;
    aggregateOperator sum;
    style EventCounter;
    flavor {{ mpi }};
{constraint_lines}
    base is walltimer {{
{blocks}
    }}
}}
"""


_RMA_COUNT = """        foreach func in %(fs)s {
            append preinsn func.entry constrained (* %(ident)s++; *)
        }"""

_RMA_BYTES = """        foreach func in %(fs)s {
            append preinsn func.entry constrained (*
                MPI_Type_size($arg[2], &bytes);
                count = $arg[1];
                %(ident)s += bytes * count;
            *)
        }"""

_RMA_CONSTRAINTS = ("moduleConstraint", "procedureConstraint", "mpi_windowConstraint")


def _rma_metrics() -> str:
    parts = []
    # operation counters
    for ident, display, fs in (
        ("rma_put_ops", "rma_put_ops", "mpi_put"),
        ("rma_get_ops", "rma_get_ops", "mpi_get"),
        ("rma_acc_ops", "rma_acc_ops", "mpi_acc"),
        ("rma_ops", "rma_ops", "mpi_rma_data"),
        ("rma_sync_ops", "rma_sync_ops", "mpi_rma_sync_general"),
    ):
        parts.append(
            _counter_metric(
                ident, display, "ops",
                _RMA_COUNT % {"fs": fs, "ident": ident},
                constraints=_RMA_CONSTRAINTS,
            )
        )
    # byte counters (the rma_put_bytes shape from Figure 2)
    for ident, display, fs in (
        ("rma_put_bytes", "rma_put_bytes", "mpi_put"),
        ("rma_get_bytes", "rma_get_bytes", "mpi_get"),
        ("rma_acc_bytes", "rma_acc_bytes", "mpi_acc"),
        ("rma_bytes", "rma_bytes", "mpi_rma_data"),
    ):
        parts.append(
            _counter_metric(
                ident, display, "bytes",
                _RMA_BYTES % {"fs": fs, "ident": ident},
                constraints=_RMA_CONSTRAINTS,
                counters=("bytes", "count"),
            )
        )
    # synchronization wall-clock timers
    parts.append(
        _walltimer_metric(
            "at_rma_sync_wait", "at_rma_sync_wait", ("mpi_at_rma_sync",),
            constraints=_RMA_CONSTRAINTS,
        )
    )
    parts.append(
        _walltimer_metric(
            "pt_rma_sync_wait", "pt_rma_sync_wait", ("mpi_pt_rma_sync",),
            constraints=_RMA_CONSTRAINTS,
        )
    )
    parts.append(
        _walltimer_metric(
            "rma_sync_wait", "rma_sync_wait", ("mpi_rma_sync_general",),
            constraints=_RMA_CONSTRAINTS,
        )
    )
    return "\n".join(parts)


_MSG_CONSTRAINTS = (
    "moduleConstraint",
    "procedureConstraint",
    "mpi_communicatorConstraint",
    "mpi_msgtagConstraint",
)

_MPI1_METRICS = (
    _walltimer_metric("sync_wait", "sync_wait_inclusive", ("mpi_all_sync",))
    + _walltimer_metric("msg_sync_wait", "msg_sync_wait", ("mpi_msg_sync",), constraints=_MSG_CONSTRAINTS)
    + _walltimer_metric("barrier_sync_wait", "barrier_sync_wait", ("mpi_barrier_fns",), constraints=_MSG_CONSTRAINTS)
    + _walltimer_metric("spawn_sync_wait", "spawn_sync_wait", ("mpi_spawn_fns",))
    + _walltimer_metric("io_wait", "io_wait_inclusive", ("io_fns",))
    # MPI-IO metrics: the remaining MPI-2 feature the paper lists as future
    # work ("We are continuing to implement support for the remaining MPI-2
    # features") -- provided here as an extension.
    + _walltimer_metric("mpi_io_wait", "mpi_io_wait_inclusive", ("mpi_io_fns",))
    + _counter_metric(
        "mpi_io_bytes_written", "mpi_io_bytes_written", "bytes",
        """        foreach func in mpi_io_write_fns {
            append preinsn func.entry constrained (*
                MPI_Type_size($arg[4], &bytes);
                count = $arg[3];
                mpi_io_bytes_written += bytes * count;
            *)
        }""",
        counters=("bytes", "count"),
    )
    + _counter_metric(
        "mpi_io_bytes_read", "mpi_io_bytes_read", "bytes",
        """        foreach func in mpi_io_read_fns {
            append preinsn func.entry constrained (*
                MPI_Type_size($arg[4], &bytes);
                count = $arg[3];
                mpi_io_bytes_read += bytes * count;
            *)
        }""",
        counters=("bytes", "count"),
    )
    + _counter_metric(
        "msgs_sent", "msgs_sent", "msgs",
        _RMA_COUNT % {"fs": "mpi_send_fns", "ident": "msgs_sent"},
        constraints=_MSG_CONSTRAINTS,
    )
    + _counter_metric(
        "msgs_recv", "msgs_recv", "msgs",
        _RMA_COUNT % {"fs": "mpi_recv_fns", "ident": "msgs_recv"},
        constraints=_MSG_CONSTRAINTS,
    )
    + _counter_metric(
        "msg_bytes_sent", "msg_bytes_sent", "bytes",
        _RMA_BYTES % {"fs": "mpi_send_fns", "ident": "msg_bytes_sent"},
        constraints=_MSG_CONSTRAINTS,
        counters=("bytes", "count"),
    )
    + _counter_metric(
        "msg_bytes_recv", "msg_bytes_recv", "bytes",
        _RMA_BYTES % {"fs": "mpi_recv_fns", "ident": "msg_bytes_recv"},
        constraints=_MSG_CONSTRAINTS,
        counters=("bytes", "count"),
    )
    + """
metric cpu_inclusive {
    name "cpu_inclusive";
    units CPUs;
    unitsType normalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    base is proctimer {
        foreach func in constraint_target {
            append preinsn func.entry (* startProcessTimer(cpu_inclusive); *)
            prepend preinsn func.return (* stopProcessTimer(cpu_inclusive); *)
        }
    }
}

metric procedure_calls {
    name "procedure_calls";
    units calls;
    unitsType unnormalized;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    constraint moduleConstraint;
    constraint procedureConstraint;
    base is counter {
        foreach func in constraint_target {
            append preinsn func.entry (* procedure_calls++; *)
        }
    }
}
"""
)

#: The tool's full default metric set.
DEFAULT_MDL = _FUNCSETS + _CONSTRAINTS + _rma_metrics() + _MPI1_METRICS

#: Paradyn 4.0's metric definitions included Fortran profiling names but not
#: the C PMPI names (Section 4.1.1).  Loading these *after* DEFAULT_MDL
#: reproduces that bug for the weak-symbols ablation bench: the message
#: funcsets lose their PMPI entries, so default-built MPICH applications
#: (whose MPI_* calls resolve to PMPI_* symbols) are not measured.
LEGACY_MDL_OVERRIDES = """
funcset mpi_send_fns = { MPI_Send, MPI_Isend, MPI_Sendrecv };
funcset mpi_recv_fns = { MPI_Recv, MPI_Irecv };
funcset mpi_msg_sync = { MPI_Send, MPI_Recv, MPI_Sendrecv, MPI_Wait, MPI_Waitall,
                         MPI_Bcast, MPI_Reduce, MPI_Allreduce };
funcset mpi_all_sync = { MPI_Send, MPI_Recv, MPI_Sendrecv, MPI_Wait, MPI_Waitall,
                         MPI_Barrier, MPI_Bcast, MPI_Reduce, MPI_Allreduce,
                         MPI_Win_fence, MPI_Win_start, MPI_Win_complete, MPI_Win_wait,
                         MPI_Win_lock, MPI_Win_unlock, MPI_Win_create, MPI_Win_free,
                         MPI_Comm_spawn, MPI_Intercomm_merge };
funcset mpi_barrier_fns = { MPI_Barrier };
"""


# ---------------------------------------------------------------------------
# native metrics: sampled from process clocks, not snippets
# ---------------------------------------------------------------------------

#: name -> (units_type, sampler(proc) -> monotonically increasing value)
NATIVE_METRICS: dict[str, tuple[str, Callable]] = {
    "cpu": ("normalized", lambda proc: proc.cpu_user_time()),
    "exec_time": ("normalized", lambda proc: proc.wall_time()),
}

#: Extension (not in the Paradyn default set -- the paper's system-time
#: PPerfMark program *fails* precisely because this metric is missing).
SYSTEM_TIME_METRIC: dict[str, tuple[str, Callable]] = {
    "system_time": ("normalized", lambda proc: proc.cpu_system_time()),
}


def native_sampler(name: str, extended: bool = False) -> tuple[str, Callable]:
    table = dict(NATIVE_METRICS)
    if extended:
        table.update(SYSTEM_TIME_METRIC)
    return table[name]


def build_library(*, legacy_metrics: bool = False, extended_io: bool = False) -> MdlLibrary:
    """The default metric library; flags select the ablation variants."""
    library = MdlLibrary()
    library.load(DEFAULT_MDL)
    if legacy_metrics:
        library.load(LEGACY_MDL_OVERRIDES)
    if extended_io:
        library.load("funcset io_fns = { read, write, readv, writev };")
    return library
