"""AST node types for the MDL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

__all__ = [
    "MdlFile",
    "MetricDef",
    "ConstraintDef",
    "FuncSetDef",
    "InstrBlock",
    "InstrRequest",
    "CodeStmt",
    "AssignStmt",
    "IncrStmt",
    "TimerStmt",
    "CallStmt",
    "IfStmt",
    "CodeExpr",
    "NumberExpr",
    "NameExpr",
    "ArgExpr",
    "ReturnExpr",
    "ConstraintParamExpr",
    "CallExpr",
    "BinaryExpr",
]


# ---------------------------------------------------------------------------
# expressions inside (* ... *) code
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CodeExpr:
    pass


@dataclass(frozen=True)
class NumberExpr(CodeExpr):
    value: float


@dataclass(frozen=True)
class NameExpr(CodeExpr):
    name: str


@dataclass(frozen=True)
class ArgExpr(CodeExpr):
    """``$arg[n]``"""

    index: int


@dataclass(frozen=True)
class ReturnExpr(CodeExpr):
    """``$return``"""


@dataclass(frozen=True)
class ConstraintParamExpr(CodeExpr):
    """``$constraint[n]`` -- the focus value bound at instantiation time."""

    index: int


@dataclass(frozen=True)
class CallExpr(CodeExpr):
    """Builtin call, e.g. ``MPI_Type_size($arg[2])`` or
    ``DYNINSTWindow_FindUniqueId($arg[7])``."""

    name: str
    args: tuple[CodeExpr, ...]


@dataclass(frozen=True)
class BinaryExpr(CodeExpr):
    op: str
    left: CodeExpr
    right: CodeExpr


# ---------------------------------------------------------------------------
# statements inside (* ... *) code
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CodeStmt:
    pass


@dataclass(frozen=True)
class AssignStmt(CodeStmt):
    """``name = expr`` or ``name += expr``."""

    target: str
    op: str  # "=" or "+="
    value: CodeExpr


@dataclass(frozen=True)
class IncrStmt(CodeStmt):
    """``name++``."""

    target: str


@dataclass(frozen=True)
class TimerStmt(CodeStmt):
    """``startWallTimer(t)`` / ``stopWallTimer(t)`` /
    ``startProcessTimer(t)`` / ``stopProcessTimer(t)``."""

    action: str  # "start" | "stop"
    timer: str

    VERBS = {
        "startWallTimer": "start",
        "stopWallTimer": "stop",
        "startProcessTimer": "start",
        "stopProcessTimer": "stop",
    }


@dataclass(frozen=True)
class CallStmt(CodeStmt):
    """A builtin call in statement position.  C-style out-parameters
    (``MPI_Type_size($arg[2], &bytes)``) store the result into the named
    variable."""

    call: CallExpr
    out_var: Optional[str] = None


@dataclass(frozen=True)
class IfStmt(CodeStmt):
    condition: CodeExpr
    body: tuple[CodeStmt, ...]


# ---------------------------------------------------------------------------
# top-level definitions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InstrRequest:
    """One ``append/prepend preinsn func.entry|func.return [constrained]``."""

    order: str  # "append" | "prepend"
    where: str  # "entry" | "return"
    constrained: bool
    statements: tuple[CodeStmt, ...]


@dataclass(frozen=True)
class InstrBlock:
    """``foreach func in <set> { ... }``."""

    funcset: str
    requests: tuple[InstrRequest, ...]


@dataclass(frozen=True)
class MetricDef:
    ident: str
    display_name: str
    units: str
    units_type: str  # "normalized" | "unnormalized"
    aggregate: str  # "sum" | "avg" | "min" | "max"
    style: str  # "EventCounter" | "SampledFunction"
    flavors: tuple[str, ...]
    constraints: tuple[str, ...]
    counters: tuple[str, ...]  # auxiliary counter declarations
    base_kind: str  # "counter" | "walltimer" | "proctimer"
    blocks: tuple[InstrBlock, ...]


@dataclass(frozen=True)
class ConstraintDef:
    ident: str
    path: str  # hierarchy path the constraint applies to, e.g. /SyncObject/Window
    base_kind: str  # always "counter" in the paper
    blocks: tuple[InstrBlock, ...]


@dataclass(frozen=True)
class FuncSetDef:
    """``funcset name = { f1, f2, ... };`` -- our MDL extension used to name
    the function groups Table 1 references (``mpi_put``, ``mpi_rma_sync``...)."""

    ident: str
    functions: tuple[str, ...]


@dataclass
class MdlFile:
    metrics: dict[str, MetricDef] = field(default_factory=dict)
    constraints: dict[str, ConstraintDef] = field(default_factory=dict)
    funcsets: dict[str, FuncSetDef] = field(default_factory=dict)

    def merge(self, other: "MdlFile") -> None:
        self.metrics.update(other.metrics)
        self.constraints.update(other.constraints)
        self.funcsets.update(other.funcsets)
