"""Tokenizer for the MDL subset (Paradyn's Metric Description Language).

Handles the surface syntax of Figure 2 of the paper: block structure,
identifiers, strings, numbers, paths (``/SyncObject/Window``), the
``$arg[n]``/``$return``/``$constraint[n]`` instrumentation variables, and
``(* ... *)`` instrumentation-code blocks (whose contents are re-lexed with
the same tokenizer when the parser descends into them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["Token", "MdlSyntaxError", "tokenize"]


class MdlSyntaxError(SyntaxError):
    """Raised on malformed MDL source."""


@dataclass(frozen=True)
class Token:
    kind: str  # IDENT, NUMBER, STRING, PATH, DOLLAR, PUNCT, CODE, EOF
    value: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.value!r}, line {self.line})"


_PUNCT2 = ("++", "+=", "-=", "==", "!=", "<=", ">=", "&&", "||")
_PUNCT1 = "{}();,=<>+-*/&[]."


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            continue
        # comments: // to end of line
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        # instrumentation code block (* ... *)
        if source.startswith("(*", i):
            end = source.find("*)", i + 2)
            if end < 0:
                raise MdlSyntaxError(f"line {line}: unterminated (* code block")
            code = source[i + 2 : end]
            tokens.append(Token("CODE", code, line))
            line += code.count("\n")
            i = end + 2
            continue
        if ch == '"':
            end = source.find('"', i + 1)
            if end < 0:
                raise MdlSyntaxError(f"line {line}: unterminated string")
            tokens.append(Token("STRING", source[i + 1 : end], line))
            i = end + 1
            continue
        if ch == "$":
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            name = source[i + 1 : j]
            if not name:
                raise MdlSyntaxError(f"line {line}: bare '$'")
            tokens.append(Token("DOLLAR", name, line))
            i = j
            continue
        if ch == "/" and i + 1 < n and (source[i + 1].isalpha() or source[i + 1] == "_"):
            # resource path, e.g. /SyncObject/Window
            j = i
            while j < n and (source[j].isalnum() or source[j] in "/_"):
                j += 1
            tokens.append(Token("PATH", source[i:j], line))
            i = j
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (source[j].isdigit() or (source[j] == "." and not seen_dot)):
                if source[j] == ".":
                    # "1.5" vs "func.entry" style member access after a number
                    if j + 1 >= n or not source[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token("NUMBER", source[i:j], line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            tokens.append(Token("IDENT", source[i:j], line))
            i = j
            continue
        two = source[i : i + 2]
        if two in _PUNCT2:
            tokens.append(Token("PUNCT", two, line))
            i += 2
            continue
        if ch in _PUNCT1:
            tokens.append(Token("PUNCT", ch, line))
            i += 1
            continue
        raise MdlSyntaxError(f"line {line}: unexpected character {ch!r}")
    tokens.append(Token("EOF", "", line))
    return tokens
