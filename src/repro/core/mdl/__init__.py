"""Paradyn's Metric Description Language (MDL): lexer, parser, compiler.

The subset implemented covers everything Figure 2 of the paper shows --
metric definitions with counter/walltimer/proctimer bases, ``foreach func
in <set>`` instrumentation requests, ``constrained`` execution, resource
constraints with ``$constraint[n]`` parameters, ``$arg[n]``/``$return``
access, and instrumentation-runtime builtins -- plus ``funcset``
definitions for naming function groups.
"""

from .ast import ConstraintDef, FuncSetDef, MdlFile, MetricDef
from .compiler import MdlCompileError, MdlLibrary, MetricInstance, instantiate_metric
from .lexer import MdlSyntaxError, tokenize
from .parser import parse_code, parse_mdl

__all__ = [
    "MdlLibrary",
    "MetricInstance",
    "instantiate_metric",
    "MdlCompileError",
    "MdlSyntaxError",
    "parse_mdl",
    "parse_code",
    "tokenize",
    "MdlFile",
    "MetricDef",
    "ConstraintDef",
    "FuncSetDef",
]
