"""MDL compiler: metric definition + focus + process -> installed snippets.

Instantiating a *metric-focus pair* on a process (the unit of
instrumentation in Paradyn) performs:

1. allocation of the metric's base variable (counter / wall timer / process
   timer) and any auxiliary counters in the mutatee;
2. selection of the constraint definitions the focus requires -- the
   ``/Code`` component maps to ``moduleConstraint``/``procedureConstraint``,
   ``/SyncObject/...`` components to the communicator/tag/window
   constraints of Figure 2 -- and installation of their flag-maintenance
   snippets (prepended, so they execute before metric snippets at shared
   points);
3. compilation of each ``foreach func in <set>`` request into snippet IR,
   with ``constrained`` requests guarded by the constraint flags;
4. insertion at function entry/return points, weak-symbol aware and
   de-duplicated (an MPICH image resolves both ``MPI_Send`` and
   ``PMPI_Send`` to one function -- it must be instrumented once).

The ``/Machine`` focus component is structural: daemons only instantiate
pairs on processes inside it, so no snippets are needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ...dyninst.image import FunctionDef, Image
from ...dyninst.mutator import InstrumentationHandle, Mutator
from ...dyninst.snippets import (
    AddCounter,
    ExprStmt,
    Arg,
    BinOp,
    BuiltinCall,
    Const,
    CounterVar,
    Expr,
    If,
    InstrVar,
    ProcTimerVar,
    ReturnValue,
    SetCounter,
    Snippet,
    StartTimer,
    Stmt,
    StopTimer,
    VarValue,
    WallTimerVar,
)
from ..resources import Focus
from . import ast
from .parser import parse_mdl

__all__ = ["MdlLibrary", "MetricInstance", "MdlCompileError", "SPECIAL_FUNCSETS"]

#: funcset names with compiler-defined meaning (not user definable)
SPECIAL_FUNCSETS = ("constraint_target", "module_functions")


class MdlCompileError(RuntimeError):
    """Raised when a metric cannot be instantiated for a focus/process."""


class MdlLibrary:
    """A loaded collection of metric, constraint, and funcset definitions."""

    def __init__(self) -> None:
        self.definitions = ast.MdlFile()

    def load(self, source: str) -> None:
        self.definitions.merge(parse_mdl(source))

    # -- lookups ---------------------------------------------------------------

    def metric(self, name: str) -> ast.MetricDef:
        try:
            return self.definitions.metrics[name]
        except KeyError:
            raise MdlCompileError(f"unknown metric {name!r}") from None

    def metric_names(self) -> list[str]:
        return sorted(self.definitions.metrics)

    def constraint(self, name: str) -> ast.ConstraintDef:
        try:
            return self.definitions.constraints[name]
        except KeyError:
            raise MdlCompileError(f"unknown constraint {name!r}") from None

    def funcset(self, name: str) -> tuple[str, ...]:
        try:
            return self.definitions.funcsets[name].functions
        except KeyError:
            raise MdlCompileError(f"unknown funcset {name!r}") from None

    def resolve_funcset(
        self,
        name: str,
        image: Image,
        *,
        constraint_target: Optional[tuple[str, ...]] = None,
    ) -> list[FunctionDef]:
        """Resolve a funcset name to defined functions in ``image``.

        Metric definitions name functions for several MPI implementations at
        once; names missing from this image are skipped, and weak aliases
        are de-duplicated by resolved identity.
        """
        if name == "constraint_target":
            if not constraint_target:
                raise MdlCompileError("constraint_target used outside a code constraint")
            if len(constraint_target) == 1:
                # a module-level code focus: every function of the module
                # (one shared timer + nesting gives inclusive union time)
                module = image.modules.get(constraint_target[0])
                if module is not None:
                    return list(module.functions.values())
                fn = image.lookup(constraint_target[0])
                return [fn] if fn is not None else []
            module_name, function_name = constraint_target[-2], constraint_target[-1]
            fn = image.lookup(function_name)
            if fn is None or fn.module.name != module_name:
                return []
            return [fn]
        if name == "module_functions":
            if not constraint_target:
                raise MdlCompileError("module_functions used outside a code constraint")
            module_name = constraint_target[0]
            module = image.modules.get(module_name)
            if module is None:
                return []
            return list(module.functions.values())
        functions: list[FunctionDef] = []
        seen: set[int] = set()
        for fname in self.funcset(name):
            # strong symbols only: instrumentation targets functions found
            # in the symbol table, so a weak MPI_* alias over PMPI_* is
            # invisible unless the PMPI name itself is listed (the paper's
            # Section 4.1.1 weak-symbols issue)
            fn = image.lookup_strong(fname)
            if fn is not None and id(fn) not in seen:
                seen.add(id(fn))
                functions.append(fn)
        return functions


def _constraint_param_count(definition: ast.ConstraintDef) -> int:
    highest = -1

    def visit_expr(expr: ast.CodeExpr) -> None:
        nonlocal highest
        if isinstance(expr, ast.ConstraintParamExpr):
            highest = max(highest, expr.index)
        elif isinstance(expr, ast.BinaryExpr):
            visit_expr(expr.left)
            visit_expr(expr.right)
        elif isinstance(expr, ast.CallExpr):
            for arg in expr.args:
                visit_expr(arg)

    def visit_stmt(stmt: ast.CodeStmt) -> None:
        if isinstance(stmt, ast.AssignStmt):
            visit_expr(stmt.value)
        elif isinstance(stmt, ast.IfStmt):
            visit_expr(stmt.condition)
            for inner in stmt.body:
                visit_stmt(inner)
        elif isinstance(stmt, ast.CallStmt):
            visit_expr(stmt.call)

    for block in definition.blocks:
        for request in block.requests:
            for stmt in request.statements:
                visit_stmt(stmt)
    # Code-hierarchy constraints bind their parameters structurally (which
    # function/module to instrument) rather than via $constraint[n]:
    for block in definition.blocks:
        if block.funcset == "constraint_target":
            return max(highest + 1, 2)  # (module, function)
        if block.funcset == "module_functions":
            return max(highest + 1, 1)  # (module,)
    return highest + 1


def _parse_focus_leaf(constraint_path: str, leaf_parts: list[str]) -> list[Any]:
    """Map resource-path leaf components to ``$constraint[n]`` values,
    applying the tool's resource naming conventions."""
    params: list[Any] = []
    for part in leaf_parts:
        if part.startswith("comm_"):
            params.append(int(part[len("comm_"):]))
        elif part.startswith("tag_"):
            params.append(int(part[len("tag_"):]))
        elif part.startswith("pid"):
            params.append(int(part[len("pid"):]))
        else:
            params.append(part)  # window uids ("0-1"), module/function names
    return params


@dataclass
class _ConstraintInstance:
    definition: ast.ConstraintDef
    params: list[Any]
    flag: CounterVar


@dataclass
class MetricInstance:
    """One installed metric-focus pair on one process."""

    metric_name: str
    definition: ast.MetricDef
    focus: Focus
    proc: Any
    base_var: InstrVar
    handle: InstrumentationHandle
    constraint_flags: list[CounterVar] = field(default_factory=list)
    _last_sample: float = 0.0

    @property
    def normalized(self) -> bool:
        return self.definition.units_type == "normalized"

    def sample_delta(self) -> float:
        """Read the base variable and return the delta since last sample."""
        value = self.base_var.sample(self.proc)
        delta = value - self._last_sample
        self._last_sample = value
        return delta

    def sample_value(self) -> float:
        return self.base_var.sample(self.proc)

    def delete(self) -> None:
        self.handle.delete()


class _CodeCompiler:
    """Compiles code-statement ASTs to snippet IR with a name environment."""

    def __init__(
        self,
        variables: dict[str, InstrVar],
        params: list[Any],
        label: str,
    ) -> None:
        self.variables = variables
        self.params = params
        self.label = label

    def var(self, name: str) -> InstrVar:
        try:
            return self.variables[name]
        except KeyError:
            raise MdlCompileError(
                f"{self.label}: unknown instrumentation variable {name!r} "
                f"(known: {sorted(self.variables)})"
            ) from None

    def counter(self, name: str) -> CounterVar:
        var = self.var(name)
        if not isinstance(var, CounterVar):
            raise MdlCompileError(f"{self.label}: {name!r} is not a counter")
        return var

    def compile_expr(self, expr: ast.CodeExpr) -> Expr:
        if isinstance(expr, ast.NumberExpr):
            return Const(expr.value)
        if isinstance(expr, ast.NameExpr):
            return VarValue(self.var(expr.name))
        if isinstance(expr, ast.ArgExpr):
            return Arg(expr.index)
        if isinstance(expr, ast.ReturnExpr):
            return ReturnValue()
        if isinstance(expr, ast.ConstraintParamExpr):
            if expr.index >= len(self.params):
                raise MdlCompileError(
                    f"{self.label}: $constraint[{expr.index}] but focus "
                    f"provides {len(self.params)} parameter(s)"
                )
            return Const(self.params[expr.index])
        if isinstance(expr, ast.CallExpr):
            return BuiltinCall(expr.name, tuple(self.compile_expr(a) for a in expr.args))
        if isinstance(expr, ast.BinaryExpr):
            return BinOp(expr.op, self.compile_expr(expr.left), self.compile_expr(expr.right))
        raise MdlCompileError(f"{self.label}: cannot compile expression {expr!r}")

    def compile_stmt(self, stmt: ast.CodeStmt) -> Stmt:
        if isinstance(stmt, ast.IncrStmt):
            return AddCounter(self.counter(stmt.target), Const(1))
        if isinstance(stmt, ast.AssignStmt):
            value = self.compile_expr(stmt.value)
            if stmt.op == "+=":
                return AddCounter(self.counter(stmt.target), value)
            return SetCounter(self.counter(stmt.target), value)
        if isinstance(stmt, ast.TimerStmt):
            timer = self.var(stmt.timer)
            if not isinstance(timer, (WallTimerVar, ProcTimerVar)):
                raise MdlCompileError(f"{self.label}: {stmt.timer!r} is not a timer")
            return StartTimer(timer) if stmt.action == "start" else StopTimer(timer)
        if isinstance(stmt, ast.CallStmt):
            call = self.compile_expr(stmt.call)
            if stmt.out_var is not None:
                return SetCounter(self.counter(stmt.out_var), call)
            return ExprStmt(call)
        if isinstance(stmt, ast.IfStmt):
            return If(
                self.compile_expr(stmt.condition),
                tuple(self.compile_stmt(s) for s in stmt.body),
            )
        raise MdlCompileError(f"{self.label}: cannot compile statement {stmt!r}")

    def compile_block(self, statements: tuple[ast.CodeStmt, ...]) -> list[Stmt]:
        return [self.compile_stmt(s) for s in statements]


def _select_constraints(
    library: MdlLibrary,
    definition: ast.MetricDef,
    focus: Focus,
) -> list[tuple[ast.ConstraintDef, list[Any]]]:
    """Choose constraint definitions for the focus's constrained components."""
    selected: list[tuple[ast.ConstraintDef, list[Any]]] = []
    declared = [library.constraint(name) for name in definition.constraints]
    for component in focus.constrained_components():
        if component.startswith("/Machine"):
            continue  # structural: daemons filter by process
        if component.startswith("/SyncObject/") and component.count("/") == 2:
            # a bare category (/SyncObject/Message etc.): the metric's own
            # function set already scopes it, no snippet constraint needed
            continue
        candidates = []
        for constraint in declared:
            if not component.startswith(constraint.path + "/"):
                continue
            leaf = component[len(constraint.path) + 1 :].split("/")
            if _constraint_param_count(constraint) == len(leaf):
                candidates.append((constraint, _parse_focus_leaf(constraint.path, leaf)))
        if not candidates:
            raise MdlCompileError(
                f"metric {definition.ident!r} has no constraint for focus "
                f"component {component!r}"
            )
        # the longest path prefix (most specific constraint) wins
        candidates.sort(key=lambda pair: len(pair[0].path), reverse=True)
        selected.append(candidates[0])
    return selected


def instantiate_metric(
    library: MdlLibrary,
    metric_name: str,
    focus: Focus,
    mutator: Mutator,
) -> MetricInstance:
    """Install one metric-focus pair on one process."""
    definition = library.metric(metric_name)
    proc = mutator.proc
    image: Image = proc.image
    handle = mutator.handle(label=f"{metric_name}@{focus.describe()}")

    # 1. base + auxiliary variables
    if definition.base_kind == "counter":
        base_var: InstrVar = mutator.new_counter(name=definition.ident)
    elif definition.base_kind == "walltimer":
        base_var = mutator.new_wall_timer(name=definition.ident)
    else:
        base_var = mutator.new_proc_timer(name=definition.ident)
    mutator.track_variable(handle, base_var)
    variables: dict[str, InstrVar] = {definition.ident: base_var}
    # the paper's examples also refer to the base by the display name
    variables.setdefault(definition.display_name, base_var)
    for counter_name in definition.counters:
        aux = mutator.new_counter(name=counter_name)
        mutator.track_variable(handle, aux)
        variables[counter_name] = aux

    instance = MetricInstance(
        metric_name=metric_name,
        definition=definition,
        focus=focus,
        proc=proc,
        base_var=base_var,
        handle=handle,
    )

    # 2. constraints for the focus
    guards: list[CounterVar] = []
    code_target: Optional[tuple[str, ...]] = None
    for constraint_def, params in _select_constraints(library, definition, focus):
        flag = mutator.new_counter(name=f"{constraint_def.ident}")
        mutator.track_variable(handle, flag)
        guards.append(flag)
        instance.constraint_flags.append(flag)
        if constraint_def.path == "/Code":
            code_target = tuple(str(p) for p in params)
        compiler = _CodeCompiler(
            variables={**variables, constraint_def.ident: flag},
            params=params,
            label=f"constraint {constraint_def.ident}",
        )
        for block in constraint_def.blocks:
            functions = library.resolve_funcset(
                block.funcset, image, constraint_target=tuple(str(p) for p in params)
            )
            for request in block.requests:
                statements = compiler.compile_block(request.statements)
                for fn in functions:
                    snippet = Snippet(
                        statements,
                        label=f"{constraint_def.ident}@{fn.name}.{request.where}",
                        owner=instance,
                    )
                    mutator.insert(handle, fn, request.where, snippet, order="prepend")

    # 3. metric snippets (guarded when 'constrained')
    compiler = _CodeCompiler(variables=variables, params=[], label=f"metric {metric_name}")
    for block in definition.blocks:
        functions = library.resolve_funcset(block.funcset, image, constraint_target=code_target)
        for request in block.requests:
            statements = compiler.compile_block(request.statements)
            snippet_guards = tuple(guards) if request.constrained else ()
            for fn in functions:
                snippet = Snippet(
                    statements,
                    guards=snippet_guards,
                    label=f"{metric_name}@{fn.name}.{request.where}",
                    owner=instance,
                )
                mutator.insert(handle, fn, request.where, snippet, order=request.order)
    return instance
