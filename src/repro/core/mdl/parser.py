"""Recursive-descent parser for the MDL subset.

Accepts the metric and constraint definitions of Figure 2 of the paper
verbatim (modulo whitespace), plus ``funcset`` definitions naming function
groups.  Identifier keywords are matched case-insensitively where Paradyn's
own examples vary (``aggregateOperator`` vs ``aggregateoperator``).
"""

from __future__ import annotations

from typing import Optional

from . import ast
from .lexer import MdlSyntaxError, Token, tokenize

__all__ = ["parse_mdl", "MdlSyntaxError"]

_BASE_KINDS = {"counter", "walltimer", "proctimer", "processtimer"}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ---------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def error(self, message: str) -> MdlSyntaxError:
        token = self.peek()
        return MdlSyntaxError(f"line {token.line}: {message} (at {token.value!r})")

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.next()
        if token.kind != kind or (value is not None and token.value != value):
            want = value or kind
            raise MdlSyntaxError(f"line {token.line}: expected {want!r}, got {token.value!r}")
        return token

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.next()
        return None

    def keyword(self) -> str:
        return self.expect("IDENT").value

    # -- top level ---------------------------------------------------------------

    def parse_file(self) -> ast.MdlFile:
        result = ast.MdlFile()
        while self.peek().kind != "EOF":
            word = self.keyword()
            if word == "metric":
                metric = self.parse_metric()
                result.metrics[metric.ident] = metric
            elif word == "constraint":
                constraint = self.parse_constraint()
                result.constraints[constraint.ident] = constraint
            elif word == "funcset":
                funcset = self.parse_funcset()
                result.funcsets[funcset.ident] = funcset
            else:
                raise MdlSyntaxError(
                    f"expected 'metric', 'constraint' or 'funcset', got {word!r}"
                )
        return result

    def parse_funcset(self) -> ast.FuncSetDef:
        ident = self.expect("IDENT").value
        self.expect("PUNCT", "=")
        self.expect("PUNCT", "{")
        names = [self.expect("IDENT").value]
        while self.accept("PUNCT", ","):
            names.append(self.expect("IDENT").value)
        self.expect("PUNCT", "}")
        self.expect("PUNCT", ";")
        return ast.FuncSetDef(ident=ident, functions=tuple(names))

    # -- metric --------------------------------------------------------------------

    def parse_metric(self) -> ast.MetricDef:
        ident = self.expect("IDENT").value
        self.expect("PUNCT", "{")
        display_name = ident
        units = "ops"
        units_type = "unnormalized"
        aggregate = "sum"
        style = "EventCounter"
        flavors: tuple[str, ...] = ()
        constraints: list[str] = []
        counters: list[str] = []
        base_kind: Optional[str] = None
        blocks: tuple[ast.InstrBlock, ...] = ()

        while not self.accept("PUNCT", "}"):
            word = self.keyword()
            lower = word.lower()
            if lower == "name":
                display_name = self.expect("STRING").value
                self.expect("PUNCT", ";")
            elif lower == "units":
                units = self.expect("IDENT").value
                self.expect("PUNCT", ";")
            elif lower == "unitstype":
                units_type = self.expect("IDENT").value.lower()
                if units_type not in ("normalized", "unnormalized"):
                    raise MdlSyntaxError(f"bad unitsType {units_type!r}")
                self.expect("PUNCT", ";")
            elif lower == "aggregateoperator":
                aggregate = self.expect("IDENT").value.lower()
                self.expect("PUNCT", ";")
            elif lower == "style":
                style = self.expect("IDENT").value
                self.expect("PUNCT", ";")
            elif lower == "flavor":
                self.expect("PUNCT", "{")
                names = [self.expect("IDENT").value]
                while self.accept("PUNCT", ","):
                    names.append(self.expect("IDENT").value)
                self.expect("PUNCT", "}")
                self.expect("PUNCT", ";")
                flavors = tuple(names)
            elif lower == "constraint":
                constraints.append(self.expect("IDENT").value)
                self.expect("PUNCT", ";")
            elif lower == "counter":
                counters.append(self.expect("IDENT").value)
                self.expect("PUNCT", ";")
            elif lower == "base":
                self.expect("IDENT", "is")
                kind = self.expect("IDENT").value.lower()
                if kind not in _BASE_KINDS:
                    raise MdlSyntaxError(f"bad base kind {kind!r}")
                base_kind = "proctimer" if kind == "processtimer" else kind
                blocks = self.parse_instr_body()
            else:
                raise MdlSyntaxError(f"unknown metric attribute {word!r}")
        if base_kind is None:
            raise MdlSyntaxError(f"metric {ident!r} has no base")
        return ast.MetricDef(
            ident=ident,
            display_name=display_name,
            units=units,
            units_type=units_type,
            aggregate=aggregate,
            style=style,
            flavors=flavors,
            constraints=tuple(constraints),
            counters=tuple(counters),
            base_kind=base_kind,
            blocks=blocks,
        )

    def parse_constraint(self) -> ast.ConstraintDef:
        ident = self.expect("IDENT").value
        path = self.expect("PATH").value
        self.expect("IDENT", "is")
        kind = self.expect("IDENT").value.lower()
        if kind != "counter":
            raise MdlSyntaxError(f"constraint base must be a counter, got {kind!r}")
        blocks = self.parse_instr_body()
        return ast.ConstraintDef(ident=ident, path=path, base_kind=kind, blocks=blocks)

    def parse_instr_body(self) -> tuple[ast.InstrBlock, ...]:
        self.expect("PUNCT", "{")
        blocks: list[ast.InstrBlock] = []
        while not self.accept("PUNCT", "}"):
            self.expect("IDENT", "foreach")
            self.expect("IDENT", "func")
            self.expect("IDENT", "in")
            funcset = self.expect("IDENT").value
            self.expect("PUNCT", "{")
            requests: list[ast.InstrRequest] = []
            while not self.accept("PUNCT", "}"):
                order = self.keyword()
                if order not in ("append", "prepend"):
                    raise MdlSyntaxError(f"expected append/prepend, got {order!r}")
                self.expect("IDENT", "preinsn")
                self.expect("IDENT", "func")
                self.expect("PUNCT", ".")
                where = self.keyword()
                if where not in ("entry", "return"):
                    raise MdlSyntaxError(f"expected func.entry or func.return, got {where!r}")
                constrained = self.accept("IDENT", "constrained") is not None
                code = self.expect("CODE").value
                statements = parse_code(code)
                requests.append(
                    ast.InstrRequest(
                        order=order,
                        where=where,
                        constrained=constrained,
                        statements=tuple(statements),
                    )
                )
            blocks.append(ast.InstrBlock(funcset=funcset, requests=tuple(requests)))
        return tuple(blocks)


# ---------------------------------------------------------------------------
# instrumentation code: statements and expressions
# ---------------------------------------------------------------------------


class _CodeParser(_Parser):
    def parse_statements(self) -> list[ast.CodeStmt]:
        statements: list[ast.CodeStmt] = []
        while self.peek().kind != "EOF":
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self) -> ast.CodeStmt:
        if self.accept("IDENT", "if"):
            self.expect("PUNCT", "(")
            condition = self.parse_expr()
            self.expect("PUNCT", ")")
            if self.accept("PUNCT", "{"):
                body: list[ast.CodeStmt] = []
                while not self.accept("PUNCT", "}"):
                    body.append(self.parse_statement())
            else:
                body = [self.parse_statement()]
            return ast.IfStmt(condition=condition, body=tuple(body))
        token = self.expect("IDENT")
        name = token.value
        if name in ast.TimerStmt.VERBS:
            self.expect("PUNCT", "(")
            timer = self.expect("IDENT").value
            self.expect("PUNCT", ")")
            self.expect("PUNCT", ";")
            return ast.TimerStmt(action=ast.TimerStmt.VERBS[name], timer=timer)
        if self.accept("PUNCT", "++"):
            self.expect("PUNCT", ";")
            return ast.IncrStmt(target=name)
        if self.accept("PUNCT", "+="):
            value = self.parse_expr()
            self.expect("PUNCT", ";")
            return ast.AssignStmt(target=name, op="+=", value=value)
        if self.accept("PUNCT", "="):
            value = self.parse_expr()
            self.expect("PUNCT", ";")
            return ast.AssignStmt(target=name, op="=", value=value)
        if self.peek().kind == "PUNCT" and self.peek().value == "(":
            call, out_var = self.parse_call(name, allow_out=True)
            self.expect("PUNCT", ";")
            return ast.CallStmt(call=call, out_var=out_var)
        raise self.error(f"cannot parse statement starting with {name!r}")

    def parse_call(self, name: str, *, allow_out: bool) -> tuple[ast.CallExpr, Optional[str]]:
        self.expect("PUNCT", "(")
        args: list[ast.CodeExpr] = []
        out_var: Optional[str] = None
        if not self.accept("PUNCT", ")"):
            while True:
                if allow_out and self.accept("PUNCT", "&"):
                    out_token = self.expect("IDENT")
                    if out_var is not None:
                        raise MdlSyntaxError(
                            f"line {out_token.line}: multiple out-parameters in {name}"
                        )
                    out_var = out_token.value
                else:
                    args.append(self.parse_expr())
                if not self.accept("PUNCT", ","):
                    break
            self.expect("PUNCT", ")")
        return ast.CallExpr(name=name, args=tuple(args)), out_var

    # expression precedence: || < && < comparison < additive < multiplicative
    def parse_expr(self) -> ast.CodeExpr:
        return self.parse_or()

    def parse_or(self) -> ast.CodeExpr:
        left = self.parse_and()
        while self.accept("PUNCT", "||"):
            left = ast.BinaryExpr("||", left, self.parse_and())
        return left

    def parse_and(self) -> ast.CodeExpr:
        left = self.parse_comparison()
        while self.accept("PUNCT", "&&"):
            left = ast.BinaryExpr("&&", left, self.parse_comparison())
        return left

    def parse_comparison(self) -> ast.CodeExpr:
        left = self.parse_additive()
        token = self.peek()
        if token.kind == "PUNCT" and token.value in ("==", "!=", "<", "<=", ">", ">="):
            self.next()
            return ast.BinaryExpr(token.value, left, self.parse_additive())
        return left

    def parse_additive(self) -> ast.CodeExpr:
        left = self.parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind == "PUNCT" and token.value in ("+", "-"):
                self.next()
                left = ast.BinaryExpr(token.value, left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> ast.CodeExpr:
        left = self.parse_primary()
        while True:
            token = self.peek()
            if token.kind == "PUNCT" and token.value in ("*", "/"):
                self.next()
                left = ast.BinaryExpr(token.value, left, self.parse_primary())
            else:
                return left

    def parse_primary(self) -> ast.CodeExpr:
        token = self.peek()
        if token.kind == "NUMBER":
            self.next()
            return ast.NumberExpr(float(token.value))
        if token.kind == "DOLLAR":
            self.next()
            if token.value == "return":
                return ast.ReturnExpr()
            if token.value in ("arg", "constraint"):
                self.expect("PUNCT", "[")
                index = int(self.expect("NUMBER").value)
                self.expect("PUNCT", "]")
                if token.value == "arg":
                    return ast.ArgExpr(index=index)
                return ast.ConstraintParamExpr(index=index)
            raise MdlSyntaxError(f"line {token.line}: unknown $-variable ${token.value}")
        if token.kind == "IDENT":
            self.next()
            if self.peek().kind == "PUNCT" and self.peek().value == "(":
                call, _ = self.parse_call(token.value, allow_out=False)
                return call
            return ast.NameExpr(name=token.value)
        if self.accept("PUNCT", "("):
            expr = self.parse_expr()
            self.expect("PUNCT", ")")
            return expr
        raise self.error("cannot parse expression")


def parse_code(code: str) -> list[ast.CodeStmt]:
    """Parse the contents of a ``(* ... *)`` block."""
    return _CodeParser(tokenize(code)).parse_statements()


def parse_mdl(source: str) -> ast.MdlFile:
    """Parse an MDL source string into metric/constraint/funcset definitions."""
    return _Parser(tokenize(source)).parse_file()
