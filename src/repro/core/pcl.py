"""PCL -- the Paradyn Configuration Language (subset).

Users modify the tool's behaviour through PCL: daemon definitions, process
(application) definitions, and tunable constants (Section 4 of the paper).
The enhancement relevant to the paper is the optional ``mpi_implementation``
daemon attribute added for non-shared-filesystem LAM/MPICH support
(Section 4.1)::

    daemon pd_lam {
        flavor mpi;
        mpi_implementation "lam";
    }

    process app {
        daemon pd_lam;
        command "-np 6 small_messages";
    }

    tunable_constant {
        PC_CPUThreshold 0.2;
        samplingInterval 0.2;
    }

MDL is a sub-language of PCL, so ``metric``/``constraint``/``funcset``
definitions may appear inline and are merged into the metric library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .mdl.ast import MdlFile
from .mdl.lexer import MdlSyntaxError, Token, tokenize
from .mdl.parser import _Parser  # reuse the token machinery

__all__ = ["PclConfig", "DaemonDef", "ProcessDef", "parse_pcl"]


@dataclass
class DaemonDef:
    name: str
    flavor: str = "mpi"
    #: Section 4.1: which MPI implementation this daemon drives ("lam",
    #: "mpich", "mpich2", "refmpi"); empty means "host default".
    mpi_implementation: str = ""
    remote_shell: str = "ssh"


@dataclass
class ProcessDef:
    name: str
    daemon: str = ""
    command: str = ""
    directory: str = ""


@dataclass
class PclConfig:
    daemons: dict[str, DaemonDef] = field(default_factory=dict)
    processes: dict[str, ProcessDef] = field(default_factory=dict)
    tunables: dict[str, float] = field(default_factory=dict)
    mdl: Optional[MdlFile] = None

    def tunable(self, name: str, default: float) -> float:
        return self.tunables.get(name, default)


class _PclParser(_Parser):
    def parse_config(self) -> PclConfig:
        config = PclConfig(mdl=MdlFile())
        while self.peek().kind != "EOF":
            word = self.keyword()
            if word == "daemon":
                d = self._parse_daemon()
                config.daemons[d.name] = d
            elif word == "process":
                p = self._parse_process()
                config.processes[p.name] = p
            elif word == "tunable_constant":
                self._parse_tunables(config)
            elif word == "metric":
                metric = self.parse_metric()
                config.mdl.metrics[metric.ident] = metric
            elif word == "constraint":
                constraint = self.parse_constraint()
                config.mdl.constraints[constraint.ident] = constraint
            elif word == "funcset":
                funcset = self.parse_funcset()
                config.mdl.funcsets[funcset.ident] = funcset
            else:
                raise MdlSyntaxError(f"unknown PCL construct {word!r}")
        return config

    def _parse_daemon(self) -> DaemonDef:
        name = self.expect("IDENT").value
        d = DaemonDef(name=name)
        self.expect("PUNCT", "{")
        while not self.accept("PUNCT", "}"):
            attr = self.keyword()
            if attr == "flavor":
                d.flavor = self.expect("IDENT").value
            elif attr == "mpi_implementation":
                d.mpi_implementation = self.expect("STRING").value
            elif attr == "remote_shell":
                d.remote_shell = self.expect("STRING").value
            else:
                raise MdlSyntaxError(f"unknown daemon attribute {attr!r}")
            self.expect("PUNCT", ";")
        return d

    def _parse_process(self) -> ProcessDef:
        name = self.expect("IDENT").value
        p = ProcessDef(name=name)
        self.expect("PUNCT", "{")
        while not self.accept("PUNCT", "}"):
            attr = self.keyword()
            if attr == "daemon":
                p.daemon = self.expect("IDENT").value
            elif attr == "command":
                p.command = self.expect("STRING").value
            elif attr == "directory":
                p.directory = self.expect("STRING").value
            else:
                raise MdlSyntaxError(f"unknown process attribute {attr!r}")
            self.expect("PUNCT", ";")
        return p

    def _parse_tunables(self, config: PclConfig) -> None:
        self.expect("PUNCT", "{")
        while not self.accept("PUNCT", "}"):
            name = self.expect("IDENT").value
            token = self.next()
            if token.kind != "NUMBER":
                raise MdlSyntaxError(
                    f"line {token.line}: tunable {name!r} needs a numeric value"
                )
            config.tunables[name] = float(token.value)
            self.expect("PUNCT", ";")


def parse_pcl(source: str) -> PclConfig:
    """Parse PCL text (daemon/process/tunable_constant blocks + inline MDL)."""
    return _PclParser(tokenize(source)).parse_config()
