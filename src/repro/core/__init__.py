"""The paper's primary contribution: the enhanced Paradyn performance tool.

Resource hierarchy with RMA windows / retirement / naming, the MDL and PCL
languages, Table 1's RMA metrics, folding histograms, per-node daemons, the
Performance Consultant, and both dynamic-process-creation support methods.
"""

from .consultant import HYPOTHESES, NodeState, PCNode, PerformanceConsultant
from .daemon import Daemon
from .frontend import Frontend, MetricFocusData
from .histogram import FoldingHistogram
from .mdl import MdlCompileError, MdlLibrary, MdlSyntaxError, parse_mdl
from .metrics import DEFAULT_MDL, RMA_METRIC_NAMES, TABLE1_ROWS, build_library
from .pcl import DaemonDef, PclConfig, ProcessDef, parse_pcl
from .resources import CATEGORIES, Focus, Resource, ResourceError, ResourceHierarchy
from .spawnsupport import AttachSpawnSupport, InterceptSpawnSupport
from .tool import Paradyn
from .visualization import render_histogram_chart

__all__ = [
    "Paradyn",
    "render_histogram_chart",
    "Frontend",
    "Daemon",
    "MetricFocusData",
    "FoldingHistogram",
    "PerformanceConsultant",
    "PCNode",
    "NodeState",
    "HYPOTHESES",
    "Focus",
    "Resource",
    "ResourceHierarchy",
    "ResourceError",
    "CATEGORIES",
    "MdlLibrary",
    "MdlCompileError",
    "MdlSyntaxError",
    "parse_mdl",
    "parse_pcl",
    "PclConfig",
    "DaemonDef",
    "ProcessDef",
    "build_library",
    "DEFAULT_MDL",
    "RMA_METRIC_NAMES",
    "TABLE1_ROWS",
    "InterceptSpawnSupport",
    "AttachSpawnSupport",
]
