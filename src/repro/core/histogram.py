"""Paradyn's fixed-memory folding histogram.

Section 5 of the paper describes the data representation our measurements
flow into: performance data is kept in an array of *bins*, each covering an
interval of time.  When the array fills, neighbouring bins are combined
("folded") and the bin width doubles -- memory stays constant for
arbitrarily long runs while granularity coarsens (the paper's experiments
ran at 0.2 s to 0.8 s granularity).

Values are stored as per-bin *deltas* of the underlying counter/timer, so

* for event counters, ``bin / width`` is a rate (operations per second);
* for timers, ``bin / width`` is utilization (seconds per second -- e.g.
  fraction of wall time spent in RMA synchronization).

The paper's analyses (Figures 4, 6, 8, 11, 15, 18, and the Presta
comparison) integrate histograms back to totals and drop the two end-point
bins, whose coverage of the measured interval is unknown; those operations
are provided here as :meth:`total` and :meth:`interior_total`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

__all__ = ["FoldingHistogram", "DEFAULT_BIN_WIDTH", "DEFAULT_NUM_BINS"]

DEFAULT_BIN_WIDTH = 0.2
DEFAULT_NUM_BINS = 1000


class FoldingHistogram:
    """Fixed-size array of time bins with automatic folding."""

    def __init__(
        self,
        num_bins: int = DEFAULT_NUM_BINS,
        bin_width: float = DEFAULT_BIN_WIDTH,
        start_time: float = 0.0,
        name: str = "",
    ) -> None:
        if num_bins < 2:
            raise ValueError("histogram needs at least 2 bins")
        if num_bins % 2:
            raise ValueError("bin count must be even so folding halves it exactly")
        if bin_width <= 0:
            raise ValueError("bin width must be positive")
        self.name = name
        self.num_bins = num_bins
        self.bin_width = float(bin_width)
        self.initial_bin_width = float(bin_width)
        self.start_time = float(start_time)
        # Backing store is a plain Python list: the write path (one add per
        # metric instance per sample tick) must be allocation-free, and
        # scalar indexing into a numpy array boxes a np.float64 per access.
        # Readers get numpy views on demand; both float models are IEEE
        # doubles, so results are bit-identical to the old array store.
        # The list grows on demand (amortized doubling, capped at
        # ``num_bins``): bins past its length are implicitly 0.0.  One tool
        # session at thousands of ranks holds a histogram per (metric,
        # rank); most cover a short run and never touch their full
        # thousand-bin capacity.
        self._data: list[float] = []
        self.folds = 0
        self._filled = 0  # index one past the last bin that received data

    # -- writing -------------------------------------------------------------

    @property
    def bins(self) -> np.ndarray:
        """The full ``num_bins`` bin array (as numpy; the store itself is a
        plain list, grown lazily and zero-padded here)."""
        out = np.zeros(self.num_bins, dtype=np.float64)
        data = self._data
        out[: len(data)] = data
        return out

    @property
    def end_time(self) -> float:
        """The end of the histogram's current capacity window."""
        return self.start_time + self.num_bins * self.bin_width

    def covered_time(self) -> float:
        """The end of the last bin that has received data."""
        return self.start_time + self._filled * self.bin_width

    def add(self, time: float, delta: float) -> None:
        """Accumulate ``delta`` into the bin covering ``time``.

        Allocation-free on the hot path: pure float arithmetic and one list
        store (folding, the rare slow branch, stays out of line)."""
        start = self.start_time
        if time < start:
            raise ValueError(f"sample at t={time} precedes histogram start {start}")
        num_bins = self.num_bins
        width = self.bin_width
        while time >= start + num_bins * width:
            self.fold()
            width = self.bin_width
        index = int((time - start) / width)
        if index >= num_bins:  # guard float-boundary rounding
            index = num_bins - 1
        data = self._data
        if index >= len(data):
            data.extend([0.0] * (min(num_bins, max(index + 1, 2 * len(data), 16)) - len(data)))
        data[index] += delta
        if index >= self._filled:
            self._filled = index + 1

    def fold(self) -> None:
        """Combine neighbouring bins; the new bins cover twice the time."""
        data = self._data
        n = len(data)
        half_len = (n + 1) // 2
        for i in range(half_len):
            j = 2 * i
            data[i] = data[j] + (data[j + 1] if j + 1 < n else 0.0)
        del data[half_len:]  # upper half is implicitly zero again
        self.bin_width *= 2.0
        self.folds += 1
        self._filled = (self._filled + 1) // 2

    # -- reading ----------------------------------------------------------------

    def filled_bins(self) -> np.ndarray:
        return np.asarray(self._data[: self._filled], dtype=np.float64)

    def bin_times(self) -> np.ndarray:
        """Start time of every filled bin."""
        return self.start_time + np.arange(self._filled) * self.bin_width

    def total(self) -> float:
        """Sum over all bins (exactly the accumulated deltas, fold-invariant)."""
        return float(self.filled_bins().sum())

    def interior_total(self) -> float:
        """Total excluding the first and last filled bins.

        The paper's calculations drop the end-point bins because "we cannot
        know exactly when in the time interval represented by the end-point
        bins that the data collection actually began or ended".
        """
        if self._filled <= 2:
            return 0.0
        return float(np.asarray(self._data[1 : self._filled - 1], dtype=np.float64).sum())

    def interior_duration(self) -> float:
        if self._filled <= 2:
            return 0.0
        return (self._filled - 2) * self.bin_width

    def interior_mean_rate(self) -> float:
        """Mean per-second rate over the interior bins (paper's method)."""
        duration = self.interior_duration()
        if duration == 0.0:
            return 0.0
        return self.interior_total() / duration

    def active_duration(self) -> float:
        """Time spanned by bins that actually contain data (used for the
        Presta per-operation-time estimates in Section 5.2.1.3)."""
        nonzero = np.nonzero(self.filled_bins())[0]
        if nonzero.size == 0:
            return 0.0
        return float(nonzero.size * self.bin_width)

    def interior_active_duration(self) -> float:
        """Active duration excluding the two end-point *active* bins."""
        nonzero = np.nonzero(self.filled_bins())[0]
        if nonzero.size <= 2:
            return 0.0
        return float((nonzero.size - 2) * self.bin_width)

    def rates(self) -> np.ndarray:
        """Per-bin rates (delta / bin width) for plotting/export."""
        return self.filled_bins() / self.bin_width

    def mean_rate(self) -> float:
        duration = self._filled * self.bin_width
        if duration == 0.0:
            return 0.0
        return self.total() / duration

    def export(self) -> list[tuple[float, float]]:
        """(bin start time, rate) pairs -- the paper's "exported the data
        that Paradyn gathered while making the histogram"."""
        return list(zip(self.bin_times().tolist(), self.rates().tolist()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FoldingHistogram {self.name!r} bins={self.num_bins} "
            f"width={self.bin_width:.3f}s folds={self.folds}>"
        )
