"""The top-level tool session: the enhanced Paradyn.

:class:`Paradyn` wires the pieces together the way the paper's Figure-free
architecture section describes: a front end, one daemon per cluster node,
per-process attach (image walk, detection snippets, call-graph hook), the
Performance Consultant, and spawn support.  It hooks the MPI universe's
process-creation callbacks, which models the enhanced launch path of
Section 4.1 (daemons start the MPI processes directly -- the intermediate
mpirun-generated script the paper removed does not exist here either).

Typical use::

    universe = MpiUniverse(impl="lam")
    tool = Paradyn(universe)
    tool.enable("msg_bytes_sent", Focus.whole_program())
    tool.run_consultant()
    universe.launch(program, nprocs)
    universe.run()
    print(tool.consultant.render_condensed())
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from ..mpi.world import MpiUniverse, MpiWorld
from .consultant import PerformanceConsultant
from .daemon import Daemon
from .frontend import Frontend, MetricFocusData
from .histogram import FoldingHistogram
from .metrics import build_library
from .pcl import PclConfig
from .resources import Focus
from .spawnsupport import AttachSpawnSupport, InterceptSpawnSupport, SpawnSupport

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.process import SimProcess

__all__ = ["Paradyn"]


class Paradyn:
    """One tool session attached to one MPI universe."""

    def __init__(
        self,
        universe: MpiUniverse,
        *,
        config: Optional[PclConfig] = None,
        bin_width: float = 0.2,
        num_bins: int = 1000,
        snippet_cost: float = 2.5e-7,
        legacy_metrics: bool = False,
        extended_io: bool = False,
        extended_native: bool = False,
        spawn_method: str = "intercept",
        pc_thresholds: Optional[dict[str, float]] = None,
        pc_experiment_window: float = 2.0,
        monitor_spawned: bool = True,
    ) -> None:
        self.universe = universe
        self.config = config or PclConfig()
        bin_width = self.config.tunable("samplingInterval", bin_width)
        self.frontend = Frontend(
            build_library(legacy_metrics=legacy_metrics, extended_io=extended_io),
            num_bins=num_bins,
            bin_width=bin_width,
            extended_native=extended_native,
        )
        if self.config.mdl is not None:
            self.frontend.library.definitions.merge(self.config.mdl)
        thresholds = dict(pc_thresholds or {})
        for key in ("PC_SyncThreshold", "PC_CPUThreshold", "PC_IOThreshold"):
            if key in self.config.tunables:
                thresholds.setdefault(key, self.config.tunables[key])
        self.consultant = PerformanceConsultant(
            self.frontend,
            universe.kernel,
            thresholds=thresholds,
            experiment_window=self.config.tunable("PC_ExperimentWindow", pc_experiment_window),
        )
        self.frontend.cost_tracker.cost_limit = self.config.tunable(
            "costLimit", self.frontend.cost_tracker.cost_limit
        )
        self.snippet_cost = snippet_cost
        self.monitor_spawned = monitor_spawned
        self._daemons: dict[str, Daemon] = {}
        self.spawn_support: SpawnSupport
        if spawn_method == "intercept":
            self.spawn_support = InterceptSpawnSupport(self)
        elif spawn_method == "attach":
            self.spawn_support = AttachSpawnSupport(self)
        else:
            raise ValueError(f"unknown spawn method {spawn_method!r}")
        universe.process_hooks.append(self._on_process_created)
        universe.comm_hooks.append(self._on_comm_created)

    # -- daemons -------------------------------------------------------------------

    def daemon_for(self, node_name: str) -> Daemon:
        daemon = self._daemons.get(node_name)
        if daemon is None:
            daemon = Daemon(
                self.frontend,
                self.universe.kernel,
                node_name,
                mpi_implementation=self.universe.impl.name,
                snippet_cost=self.snippet_cost,
            )
            self._daemons[node_name] = daemon
        return daemon

    @property
    def daemons(self) -> list[Daemon]:
        return list(self._daemons.values())

    # -- universe hooks ----------------------------------------------------------------

    def _on_process_created(self, proc: "SimProcess", endpoint: Any, world: MpiWorld) -> None:
        if world.parent_comm is None:
            # initial launch: the daemon started this process
            self.attach_process(proc, endpoint, world)
        elif self.monitor_spawned:
            self.spawn_support.on_spawned_process(proc, endpoint, world)

    def _on_comm_created(self, comm: Any) -> None:
        self.frontend.report_new_communicator(comm)

    def attach_process(self, proc: "SimProcess", endpoint: Any, world: MpiWorld) -> None:
        daemon = self.daemon_for(proc.node.name)
        daemon.attach(proc)
        self.consultant.install_callgraph_hook(proc)
        self.spawn_support.install(proc, endpoint)
        self.frontend.attach_new_process(proc)

    # -- user operations ------------------------------------------------------------------

    def enable(self, metric_name: str, focus: Optional[Focus] = None) -> MetricFocusData:
        """Request data for a metric-focus pair (a Paradyn visualization)."""
        focus = focus or Focus.whole_program()
        return self.frontend.enable(metric_name, focus, now=self.universe.kernel.now)

    def disable(self, metric_name: str, focus: Optional[Focus] = None) -> None:
        self.frontend.disable(metric_name, focus or Focus.whole_program())

    def data(self, metric_name: str, focus: Optional[Focus] = None) -> MetricFocusData:
        focus = focus or Focus.whole_program()
        data = self.frontend.enabled.get((metric_name, focus))
        if data is None:
            raise KeyError(f"metric-focus pair never enabled: {metric_name} @ {focus}")
        return data

    def histogram(
        self, metric_name: str, focus: Optional[Focus] = None, pid: Optional[int] = None
    ) -> FoldingHistogram:
        data = self.data(metric_name, focus)
        if pid is None:
            return data.aggregate_histogram()
        return data.histogram_for(pid)

    def run_consultant(self) -> PerformanceConsultant:
        """Start the Performance Consultant's automated search."""
        self.consultant.start()
        return self.consultant

    # -- hierarchy shortcuts ------------------------------------------------------------------

    @property
    def hierarchy(self):
        return self.frontend.hierarchy

    def render_hierarchy(self) -> str:
        return self.frontend.hierarchy.render()

    def render_consultant(self) -> str:
        return self.consultant.render_condensed()
