"""Paradyn's Resource Hierarchy and foci.

Application resources form a tree rooted at *Whole Program* with three
general categories beneath it -- ``Code``, ``Machine`` and ``SyncObject``
(Section 4 of the paper).  A particular resource is identified by the path
from the root, e.g. an MPI communicator X is ``/SyncObject/Message/X``.

This module adds the paper's contributions to the hierarchy:

* ``/SyncObject/Window`` for MPI-2 RMA windows (Section 4.2.1), with the
  composite ``N-M`` identifier that keeps reused implementation window ids
  unique;
* *retirement*: freed windows/communicators are grayed out and excluded
  from the Performance Consultant's search (Section 4.2.3);
* *user-friendly names* from MPI-2 object naming, propagated as display
  names (Section 4.2.3).

A :class:`Focus` selects one resource path per top-level category; the
default selection in a category is the category root, meaning
"unconstrained".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional

__all__ = ["Resource", "ResourceHierarchy", "Focus", "ResourceError", "CATEGORIES"]

CATEGORIES = ("Code", "Machine", "SyncObject")


class ResourceError(KeyError):
    """Raised for unknown or malformed resource paths."""


class Resource:
    """One node of the resource hierarchy."""

    __slots__ = ("name", "parent", "children", "retired", "display_name", "obj")

    def __init__(self, name: str, parent: Optional["Resource"] = None, obj: Any = None) -> None:
        if parent is not None and "/" in name:
            raise ResourceError(f"resource name may not contain '/': {name!r}")
        self.name = name
        self.parent = parent
        self.children: dict[str, Resource] = {}
        self.retired = False
        self.display_name: Optional[str] = None
        self.obj = obj

    @property
    def path(self) -> str:
        parts: list[str] = []
        node: Optional[Resource] = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return "/" + "/".join(reversed(parts))

    @property
    def label(self) -> str:
        """What the UI shows: the user-assigned name when there is one."""
        return self.display_name or self.name

    @property
    def depth(self) -> int:
        depth, node = 0, self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def child(self, name: str) -> "Resource":
        try:
            return self.children[name]
        except KeyError:
            raise ResourceError(f"no resource {name!r} under {self.path}") from None

    def add_child(self, name: str, obj: Any = None) -> "Resource":
        if name in self.children:
            raise ResourceError(f"duplicate resource {name!r} under {self.path}")
        node = Resource(name, parent=self, obj=obj)
        self.children[name] = node
        return node

    def ensure_child(self, name: str, obj: Any = None) -> "Resource":
        node = self.children.get(name)
        if node is None:
            node = self.add_child(name, obj=obj)
        elif obj is not None and node.obj is None:
            node.obj = obj
        return node

    def walk(self) -> Iterator["Resource"]:
        yield self
        for child in self.children.values():
            yield from child.walk()

    def active_children(self) -> list["Resource"]:
        return [c for c in self.children.values() if not c.retired]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flags = " retired" if self.retired else ""
        return f"<Resource {self.path}{flags}>"


class ResourceHierarchy:
    """The tree plus the paper's window-id uniquifier and naming updates."""

    def __init__(self) -> None:
        self.root = Resource("Whole Program")
        for category in CATEGORIES:
            self.root.add_child(category)
        sync = self.root.child("SyncObject")
        sync.add_child("Message")
        sync.add_child("Barrier")
        sync.add_child("Window")
        # window-id uniquification: impl id N -> next disambiguator M
        self._window_seq: dict[int, int] = {}
        #: update log consumed by tests/reports ("new", "retired", "named")
        self.updates: list[tuple[str, str]] = []

    # -- lookup ------------------------------------------------------------------

    def find(self, path: str) -> Resource:
        if not path.startswith("/"):
            raise ResourceError(f"resource path must start with '/': {path!r}")
        node = self.root
        for part in path.strip("/").split("/"):
            if part:
                node = node.child(part)
        return node

    def exists(self, path: str) -> bool:
        try:
            self.find(path)
            return True
        except ResourceError:
            return False

    def ensure(self, path: str, obj: Any = None) -> Resource:
        node = self.root
        parts = [p for p in path.strip("/").split("/") if p]
        for i, part in enumerate(parts):
            last = i == len(parts) - 1
            node = node.ensure_child(part, obj=obj if last else None)
        return node

    # -- category roots -------------------------------------------------------------

    @property
    def code(self) -> Resource:
        return self.root.child("Code")

    @property
    def machine(self) -> Resource:
        return self.root.child("Machine")

    @property
    def sync_objects(self) -> Resource:
        return self.root.child("SyncObject")

    # -- registration API used by the daemon/front end --------------------------------

    def add_module(self, module_name: str) -> Resource:
        return self.code.ensure_child(module_name)

    def add_function(self, module_name: str, function_name: str) -> Resource:
        return self.add_module(module_name).ensure_child(function_name)

    def add_process(self, node_name: str, pid: int, obj: Any = None) -> Resource:
        machine = self.machine.ensure_child(node_name)
        proc = machine.ensure_child(f"pid{pid}", obj=obj)
        self.updates.append(("new", proc.path))
        return proc

    def add_communicator(self, comm: Any) -> Resource:
        node = self.sync_objects.child("Message").ensure_child(f"comm_{comm.cid}", obj=comm)
        if getattr(comm, "user_named", False):
            node.display_name = comm.name
        self.updates.append(("new", node.path))
        return node

    def add_message_tag(self, comm_resource: Resource, tag: int) -> Resource:
        return comm_resource.ensure_child(f"tag_{tag}")

    def add_window(self, win: Any) -> Resource:
        """Register an RMA window under ``/SyncObject/Window``.

        The MPI implementation may reuse a window identifier N after
        ``MPI_Win_free``, so the resource is named ``N-M`` where M makes the
        pair unique (Section 4.2.1 of the paper).
        """
        impl_id = win.win_id
        seq = self._window_seq.get(impl_id, 0)
        self._window_seq[impl_id] = seq + 1
        node = self.sync_objects.child("Window").add_child(f"{impl_id}-{seq}", obj=win)
        if getattr(win, "user_named", False):
            node.display_name = win.name
        self.updates.append(("new", node.path))
        return node

    def window_resource_for(self, win: Any) -> Optional[Resource]:
        """The (non-retired) resource currently bound to a window object."""
        for node in self.sync_objects.child("Window").children.values():
            if node.obj is win and not node.retired:
                return node
        return None

    def retire(self, resource: Resource) -> None:
        """Gray a resource out: it stays displayed but leaves the PC search."""
        resource.retired = True
        self.updates.append(("retired", resource.path))

    def set_display_name(self, resource: Resource, name: str) -> None:
        resource.display_name = name
        self.updates.append(("named", f"{resource.path}={name}"))

    # -- rendering (the "Where Axis" display) -----------------------------------------

    def render(self, *, show_retired: bool = True) -> str:
        lines: list[str] = []

        def visit(node: Resource, indent: int) -> None:
            if node.retired and not show_retired:
                return
            suffix = ""
            if node.display_name:
                suffix = f" [{node.display_name}]"
            if node.retired:
                suffix += " (retired)"
            lines.append("  " * indent + node.name + suffix)
            for child in sorted(node.children.values(), key=lambda c: c.name):
                visit(child, indent + 1)

        visit(self.root, 0)
        return "\n".join(lines)


@dataclass(frozen=True)
class Focus:
    """A selection of one resource path per top-level category.

    ``/Code`` etc. (the category roots) mean "everything in that category";
    Paradyn calls the all-roots focus *Whole Program*.
    """

    code: str = "/Code"
    machine: str = "/Machine"
    sync_object: str = "/SyncObject"

    @classmethod
    def whole_program(cls) -> "Focus":
        return cls()

    def with_code(self, path: str) -> "Focus":
        return Focus(code=path, machine=self.machine, sync_object=self.sync_object)

    def with_machine(self, path: str) -> "Focus":
        return Focus(code=self.code, machine=path, sync_object=self.sync_object)

    def with_sync_object(self, path: str) -> "Focus":
        return Focus(code=self.code, machine=self.machine, sync_object=path)

    @property
    def is_whole_program(self) -> bool:
        return self == Focus()

    def components(self) -> tuple[str, str, str]:
        return (self.code, self.machine, self.sync_object)

    def constrained_components(self) -> list[str]:
        return [p for p, root in zip(self.components(), ("/Code", "/Machine", "/SyncObject")) if p != root]

    def describe(self) -> str:
        parts = self.constrained_components()
        return ", ".join(parts) if parts else "Whole Program"

    def __str__(self) -> str:
        return self.describe()
