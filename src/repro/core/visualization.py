"""Paradyn's time-histogram display, rendered as text.

The paper's Figures 4, 6, 8, 11, 15, and 18 are screenshots of Paradyn's
histogram visualization: one curve per metric-focus pair, value-per-second
on the y axis, time on the x axis.  This module renders the same view as a
monospace chart so the reproduction's reports can show the curves, not
just their integrals.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from .histogram import FoldingHistogram

__all__ = ["render_histogram_chart", "CURVE_CHARS"]

#: characters assigned to curves in order (Paradyn used colors)
CURVE_CHARS = "*o+x#@%&"


def render_histogram_chart(
    curves: Mapping[str, FoldingHistogram],
    *,
    title: str = "",
    ylabel: str = "value/sec",
    width: int = 72,
    height: int = 12,
) -> str:
    """Render one or more histograms as an ASCII chart.

    Each curve is resampled onto ``width`` columns of its covering time
    range; rows are linear in rate.  Overlapping curves show the later
    curve's character (like overdrawn pixels).
    """
    if not curves:
        return "(no data)"
    if height < 2 or width < 8:
        raise ValueError("chart needs at least 2 rows and 8 columns")

    t_end = max(h.covered_time() for h in curves.values())
    t_start = min(h.start_time for h in curves.values())
    span = max(t_end - t_start, 1e-12)

    sampled: dict[str, np.ndarray] = {}
    for label, hist in curves.items():
        rates = hist.rates()
        columns = np.zeros(width)
        if rates.size:
            starts = hist.start_time + np.arange(rates.size) * hist.bin_width
            for col in range(width):
                t = t_start + (col + 0.5) / width * span
                index = int((t - hist.start_time) / hist.bin_width)
                if 0 <= index < rates.size:
                    columns[col] = rates[index]
        sampled[label] = columns

    peak = max(float(c.max()) for c in sampled.values())
    peak = peak if peak > 0 else 1.0

    grid = [[" "] * width for _ in range(height)]
    for i, (label, columns) in enumerate(sampled.items()):
        char = CURVE_CHARS[i % len(CURVE_CHARS)]
        for col, value in enumerate(columns):
            if value <= 0:
                continue
            row = height - 1 - int(round(value / peak * (height - 1)))
            row = min(max(row, 0), height - 1)
            grid[row][col] = char

    lines = []
    if title:
        lines.append(title)
    label_width = max(len(f"{peak:.3g}"), len("0"))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            y_label = f"{peak:.3g}".rjust(label_width)
        elif row_index == height - 1:
            y_label = "0".rjust(label_width)
        else:
            y_label = " " * label_width
        lines.append(f"{y_label} |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    lines.append(
        " " * label_width
        + f"  {t_start:.1f}s"
        + f"{t_end:.1f}s".rjust(width - len(f"{t_start:.1f}s"))
    )
    legend = "   ".join(
        f"{CURVE_CHARS[i % len(CURVE_CHARS)]} = {label}"
        for i, label in enumerate(sampled)
    )
    lines.append(f"({ylabel})  {legend}")
    return "\n".join(lines)
