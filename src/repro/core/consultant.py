"""The Performance Consultant: automated bottleneck search.

Paradyn's Performance Consultant tests *hypotheses* about why a program is
slow against *foci* in the resource hierarchy, refining hypotheses that
test true along the Code, Machine and SyncObject axes (the W3 search
model).  The paper's condensed PC diagrams (Figures 3-24) are exactly the
true-tested subtree this module produces.

Hypotheses and default thresholds (tunable constants, Section 4's PCL):

* ``ExcessiveSyncWaitingTime`` -- fraction of wall time in synchronization
  (message passing, collectives, RMA synchronization) per process.
* ``ExcessiveIOBlockingTime`` -- fraction of wall time in ``read``/``write``.
* ``CPUBound`` -- user-CPU utilization per process.  The default threshold
  is 0.3: the paper's diffuse-procedure run (25% per process in
  ``bottleneckProcedure``) is found only after lowering it to 0.2
  (Section 5.1.7), which this implementation reproduces.

The search is *on-line*: each candidate node gets instrumentation enabled,
collects for one experiment window, is decided, and (when true) spawns
refinements.  Instrumentation for decided nodes is removed -- the dynamic
instrumentation economy the paper leans on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..observe.recorder import active as _observe_active  # mode-salt: none
from .frontend import Frontend, MetricFocusData
from .mdl import MdlCompileError
from .resources import Focus

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Kernel

__all__ = ["PerformanceConsultant", "PCNode", "NodeState", "Hypothesis", "HYPOTHESES"]


class NodeState(enum.Enum):
    PENDING = "pending"
    TESTING = "testing"
    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"  # program ended before the experiment finished


@dataclass(frozen=True)
class Hypothesis:
    name: str
    threshold_name: str

    def metric_for(self, focus: Focus) -> str:
        raise NotImplementedError


class _SyncHypothesis(Hypothesis):
    def metric_for(self, focus: Focus) -> str:
        component = focus.sync_object
        if component.startswith("/SyncObject/Message"):
            return "msg_sync_wait"
        if component.startswith("/SyncObject/Barrier"):
            return "barrier_sync_wait"
        if component.startswith("/SyncObject/Window"):
            return "rma_sync_wait"
        return "sync_wait"


class _CpuHypothesis(Hypothesis):
    def metric_for(self, focus: Focus) -> str:
        if focus.code != "/Code":
            return "cpu_inclusive"
        return "cpu"


class _IoHypothesis(Hypothesis):
    def metric_for(self, focus: Focus) -> str:
        return "io_wait"


SYNC = _SyncHypothesis("ExcessiveSyncWaitingTime", "PC_SyncThreshold")
CPU = _CpuHypothesis("CPUBound", "PC_CPUThreshold")
IO = _IoHypothesis("ExcessiveIOBlockingTime", "PC_IOThreshold")
HYPOTHESES: tuple[Hypothesis, ...] = (SYNC, CPU, IO)

DEFAULT_THRESHOLDS = {
    "PC_SyncThreshold": 0.25,
    "PC_CPUThreshold": 0.30,
    "PC_IOThreshold": 0.15,
}

#: refinement batches at or above this many children expand *lazily*: the
#: search keeps a cursor of (resource path, label) strings and materializes
#: a PCNode (plus its Focus) only when a testing slot frees up.  At a
#: thousand ranks a single true machine-axis node would otherwise fan out
#: into a thousand mostly-never-tested node allocations up front.  Below
#: the bound the eager path runs exactly as before.
LAZY_EXPANSION_BOUND = 128


@dataclass
class PCNode:
    hypothesis: Hypothesis
    focus: Focus
    parent: Optional["PCNode"] = None
    state: NodeState = NodeState.PENDING
    value: float = 0.0
    metric_name: str = ""
    children: list["PCNode"] = field(default_factory=list)
    depth: int = 0
    started_at: float = 0.0
    label: str = ""

    @property
    def is_true(self) -> bool:
        return self.state is NodeState.TRUE

    def describe(self) -> str:
        if self.parent is None:
            return "TopLevelHypothesis"
        if self.label:
            return self.label
        return f"{self.hypothesis.name} @ {self.focus.describe()}"


class PerformanceConsultant:
    """Drives the hypothesis search over simulated time."""

    def __init__(
        self,
        frontend: Frontend,
        kernel: "Kernel",
        *,
        thresholds: Optional[dict[str, float]] = None,
        experiment_window: float = 2.0,
        max_concurrent: int = 12,
        max_depth: int = 8,
        min_observation: float = 0.5,
    ) -> None:
        self.frontend = frontend
        self.kernel = kernel
        self.thresholds = dict(DEFAULT_THRESHOLDS)
        if thresholds:
            self.thresholds.update(thresholds)
        self.experiment_window = experiment_window
        self.max_concurrent = max_concurrent
        self.max_depth = max_depth
        self.min_observation = min_observation
        #: dynamic call graph observed by the attach-time trace hook:
        #: function name -> set of callee names
        self.callgraph: dict[str, set[str]] = {}
        self.root = PCNode(hypothesis=SYNC, focus=Focus.whole_program(), label="TopLevelHypothesis")
        self.root.state = NodeState.TRUE  # the root is definitional
        self._queue: list[PCNode] = []
        #: lazy refinement cursors: [hypothesis, parent, focus-applier,
        #: reversed (path, label) list] -- popped item by item as testing
        #: slots free up, so huge fan-outs never materialize whole
        self._expansions: list[list[Any]] = []
        #: refinement candidates the run ended before even materializing
        #: (only ever nonzero past LAZY_EXPANSION_BOUND-wide fan-outs)
        self.unexpanded = 0
        self._testing: list[PCNode] = []
        self._tested: dict[tuple[str, Focus], PCNode] = {}
        self._running = False
        self.finished = False
        for hypothesis in HYPOTHESES:
            self._enqueue(hypothesis, Focus.whole_program(), self.root)

    # -- callgraph hook --------------------------------------------------------

    def observe_call(self, proc: Any, frame: Any, event: str) -> None:
        # Runs on every simulated function entry/exit; avoids setdefault
        # (which allocates its default set even on hits) and the Frame.name
        # property (function.name reads the slot directly).
        if event != "entry":
            return
        caller = frame.caller
        if caller is None:
            return
        graph = self.callgraph
        caller_name = caller.function.name
        callees = graph.get(caller_name)
        if callees is None:
            callees = graph[caller_name] = set()
        callees.add(frame.function.name)

    def install_callgraph_hook(self, proc: Any) -> None:
        proc.trace_hooks.append(self.observe_call)

    # -- search driving ------------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.kernel.schedule(self.experiment_window / 2.0, self._tick)

    def _tick(self) -> None:
        now = self.kernel.now
        self._evaluate_finished(now)
        self._launch_pending(now)
        procs = self.frontend.all_procs()
        alive = any(not proc.exited for proc in procs)
        if alive or self._testing:
            if alive:
                self.kernel.schedule(self.experiment_window / 2.0, self._tick)
            else:
                self._finalize(now)
        else:
            self._finalize(now)

    def _finalize(self, now: float) -> None:
        """Program over: close out in-flight experiments with whatever data
        they gathered (or UNKNOWN if they saw too little)."""
        for node in list(self._testing):
            self._decide(node, now, final=True)
        self._testing.clear()
        for node in self._queue:
            node.state = NodeState.UNKNOWN
        self._queue.clear()
        for entry in self._expansions:
            self.unexpanded += len(entry[3])
        self._expansions.clear()
        self._running = False
        self.finished = True

    def _enqueue(self, hypothesis: Hypothesis, focus: Focus, parent: PCNode, label: str = "") -> None:
        key = (hypothesis.name, focus)
        if key in self._tested:
            return  # already explored via another refinement path
        node = PCNode(
            hypothesis=hypothesis,
            focus=focus,
            parent=parent,
            depth=parent.depth + 1,
            label=label,
        )
        self._tested[key] = node
        parent.children.append(node)
        if node.depth <= self.max_depth:
            self._queue.append(node)
        else:  # pragma: no cover - depth guard
            node.state = NodeState.UNKNOWN

    def _launch_pending(self, now: float) -> None:
        # Paradyn's cost model: never let instrumentation overhead exceed
        # the tunable limit -- defer new experiments when the mutatee is
        # already perturbed past it.
        if self.frontend.cost_tracker.over_limit():
            return
        # LIFO: newest (deepest) candidates first, so refinement chains run
        # depth-first and reach leaf causes before the program ends.
        while len(self._testing) < self.max_concurrent:
            node = self._next_candidate()
            if node is None:
                return
            metric = node.hypothesis.metric_for(node.focus)
            node.metric_name = metric
            try:
                self.frontend.enable(metric, node.focus, now=now)
            except MdlCompileError:
                node.state = NodeState.UNKNOWN
                continue
            node.state = NodeState.TESTING
            node.started_at = now
            self._testing.append(node)

    def _next_candidate(self) -> Optional[PCNode]:
        """Next node to test: lazy cursors first (they only exist for the
        newest huge fan-outs), then the eager LIFO queue."""
        while self._expansions:
            hypothesis, parent, apply_axis, items = self._expansions[-1]
            while items:
                path, label = items.pop()
                focus = apply_axis(path)
                key = (hypothesis.name, focus)
                if key in self._tested:
                    continue  # already explored via another refinement path
                node = PCNode(
                    hypothesis=hypothesis,
                    focus=focus,
                    parent=parent,
                    depth=parent.depth + 1,
                    label=label,
                )
                self._tested[key] = node
                parent.children.append(node)
                if node.depth <= self.max_depth:
                    return node
                node.state = NodeState.UNKNOWN  # pragma: no cover - depth guard
            self._expansions.pop()
        if self._queue:
            return self._queue.pop()
        return None

    def _evaluate_finished(self, now: float) -> None:
        due = [n for n in self._testing if now - n.started_at >= self.experiment_window]
        if not due:
            return
        # flush outstanding counter/timer accumulation so decisions see
        # data up to *now*, not up to the last periodic sample
        for daemon in self.frontend.daemons:
            daemon.sample_now(now)
        for node in due:
            self._decide(node, now)
            self._testing.remove(node)

    def _decide(self, node: PCNode, now: float, *, final: bool = False) -> None:
        data = self.frontend.enabled.get((node.metric_name, node.focus))
        observed = now - node.started_at
        if data is None or observed <= 0.0 or (final and observed < self.min_observation):
            node.state = NodeState.UNKNOWN
            self._record_decision(node)
            return
        # A hypothesis tests true when the *worst* matching process exceeds
        # the threshold -- a bottleneck anywhere is worth refining, even if
        # averaging across the job would dilute it (intensive-server's one
        # busy server among five idle clients).
        value = data.max_normalized(node.started_at, now)
        node.value = value
        threshold = self.thresholds[node.hypothesis.threshold_name]
        if value > threshold:
            node.state = NodeState.TRUE
            self._record_decision(node)
            self._refine(node)
        else:
            node.state = NodeState.FALSE
            self._record_decision(node)
        # decided: remove the instrumentation (dynamic economy)
        self.frontend.disable(node.metric_name, node.focus)

    @staticmethod
    def _record_decision(node: PCNode) -> None:
        """Publish the decision to the flight recorder (when one is on) so
        a live viewer can watch the search narrow; the simulated search is
        untouched -- this reads state, it never advances the kernel."""
        rec = _observe_active()
        if rec is None:
            return
        rec.instant(
            "pc.decide",
            node=node.describe(),
            state=node.state.name,
            value=round(node.value, 6) if node.value is not None else None,
            metric=node.metric_name,
            depth=node.depth,
        )

    # -- refinement ----------------------------------------------------------------

    def _refine(self, node: PCNode) -> None:
        """Generate refinements of a true node.

        Unbounded cross-products of the three axes would swamp the search
        (every machine x code x sync combination), so refinement follows
        the paper's diagnosis shapes:

        * the **code chain** (module -> function -> callees) refines from
          pure code paths and may *end* in a SyncObject refinement -- the
          Figure 3/10 shape ``Gsend_message -> MPI_Send -> communicator ->
          tag``;
        * the **machine tree** (node -> process) stays flat;
        * the **sync tree** (category -> instance -> tag) refines from the
          whole-program focus.

        Enqueue order matters: the queue is LIFO, so the *last* axis
        enqueued is explored first -- code chains have priority.
        """
        rec = _observe_active()
        if rec is not None:
            rec.instant("pc.refine", node=node.describe(), depth=node.depth)
        hypothesis = node.hypothesis
        focus = node.focus
        pure_code = focus.machine == "/Machine"
        pure_sync = focus.code == "/Code" and focus.machine == "/Machine"
        if hypothesis is SYNC and (pure_sync or focus.code != "/Code"):
            self._expand(hypothesis, node, focus.with_sync_object, self._sync_refinements(focus))
        if focus.code == "/Code" and focus.sync_object == "/SyncObject":
            self._expand(hypothesis, node, focus.with_machine, self._machine_refinements(focus))
        if pure_code and focus.sync_object == "/SyncObject":
            self._expand(hypothesis, node, focus.with_code, self._code_refinements(focus))

    def _expand(
        self,
        hypothesis: Hypothesis,
        parent: PCNode,
        apply_axis: Callable[[str], Focus],
        items: list[tuple[str, str]],
    ) -> None:
        """Enqueue one axis's refinements: eagerly below the lazy bound
        (unchanged search behaviour), as a cursor of path strings above it."""
        if len(items) < LAZY_EXPANSION_BOUND:
            for path, label in items:
                self._enqueue(hypothesis, apply_axis(path), parent, label)
        else:
            self._expansions.append([hypothesis, parent, apply_axis, list(reversed(items))])

    def _code_refinements(self, focus: Focus) -> list[tuple[str, str]]:
        hierarchy = self.frontend.hierarchy
        out: list[tuple[str, str]] = []
        component = focus.code
        if component == "/Code":
            for module in hierarchy.code.active_children():
                if self._module_is_system(module.name):
                    continue
                out.append((module.path, module.label))
        else:
            parts = component.strip("/").split("/")
            if len(parts) == 2:  # /Code/module -> functions
                module = hierarchy.find(component)
                for fn in module.active_children():
                    out.append((fn.path, fn.label))
            elif len(parts) == 3:  # /Code/module/function -> observed callees
                fn_name = parts[2]
                for callee in sorted(self.callgraph.get(fn_name, ())):
                    callee_path = self._code_path_for_function(callee)
                    if callee_path is not None and callee_path != component:
                        out.append((callee_path, callee))
        return out

    def _code_path_for_function(self, fn_name: str) -> Optional[str]:
        for module in self.frontend.hierarchy.code.children.values():
            if fn_name in module.children:
                return module.children[fn_name].path
        return None

    def _module_is_system(self, module_name: str) -> bool:
        return module_name.startswith("lib") and module_name.endswith(".so")

    def _machine_refinements(self, focus: Focus) -> list[tuple[str, str]]:
        hierarchy = self.frontend.hierarchy
        component = focus.machine
        out: list[tuple[str, str]] = []
        if component == "/Machine":
            for machine in hierarchy.machine.active_children():
                out.append((machine.path, machine.label))
        else:
            parts = component.strip("/").split("/")
            if len(parts) == 2:  # node -> processes
                node = hierarchy.find(component)
                for proc in node.active_children():
                    out.append((proc.path, proc.label))
        return out

    def _sync_refinements(self, focus: Focus) -> list[tuple[str, str]]:
        hierarchy = self.frontend.hierarchy
        component = focus.sync_object
        out: list[tuple[str, str]] = []
        if component == "/SyncObject":
            for category in hierarchy.sync_objects.active_children():
                out.append((category.path, category.name))
        else:
            parts = component.strip("/").split("/")
            node = hierarchy.find(component)
            if len(parts) == 2:  # category -> instances
                for instance in node.active_children():
                    out.append((instance.path, instance.label))
            elif len(parts) == 3 and parts[1] == "Message":
                for tag_node in node.active_children():
                    out.append((tag_node.path, tag_node.label))
        return out

    # -- results ------------------------------------------------------------------------

    def true_nodes(self) -> list[PCNode]:
        result = []

        def visit(node: PCNode) -> None:
            for child in node.children:
                if child.is_true:
                    result.append(child)
                visit(child)

        visit(self.root)
        return result

    def found(self, hypothesis_name: str, *needles: str) -> bool:
        """True iff some true node for the hypothesis mentions all needles
        in its focus description (helper for the verdict logic)."""
        for node in self.true_nodes():
            if node.hypothesis.name != hypothesis_name:
                continue
            description = node.focus.describe()
            if all(needle in description for needle in needles):
                return True
        return False

    def search_history(self) -> list[PCNode]:
        """Every node the search generated, in discovery order (Paradyn's
        Search History Graph, including false/unknown nodes)."""
        result: list[PCNode] = []

        def visit(node: PCNode) -> None:
            for child in node.children:
                result.append(child)
                visit(child)

        visit(self.root)
        return result

    def summary(self) -> dict[str, int]:
        """Counts by outcome over the whole search."""
        counts = {state.value: 0 for state in NodeState}
        for node in self.search_history():
            counts[node.state.value] += 1
        counts["total"] = len(self.search_history())
        return counts

    def render_search_history(self) -> str:
        """The full search record: every experiment with its verdict."""
        lines = [f"Search history ({len(self.search_history())} experiments):"]

        def visit(node: PCNode, indent: int) -> None:
            for child in node.children:
                mark = {"true": "+", "false": "-", "unknown": "?"}.get(
                    child.state.value, "."
                )
                lines.append(
                    "  " * indent
                    + f"{mark} {child.hypothesis.name} @ {child.focus.describe()}"
                    + (f"  [{child.value:.2f}]" if child.state is not NodeState.UNKNOWN else "")
                )
                visit(child, indent + 1)

        visit(self.root, 1)
        if self.unexpanded:
            lines.append(
                f"  ({self.unexpanded} refinement candidates never expanded)"
            )
        return "\n".join(lines)

    def render_condensed(self, *, show_values: bool = True) -> str:
        """The condensed PC diagram of the paper: true nodes only."""
        lines: list[str] = ["TopLevelHypothesis"]

        def visit(node: PCNode, indent: int) -> None:
            for child in node.children:
                if child.is_true:
                    value = f"  [{child.value:.2f}]" if show_values else ""
                    what = child.label or child.focus.describe()
                    if child.parent is self.root:
                        what = child.hypothesis.name
                    lines.append("  " * indent + "+ " + what + value)
                    visit(child, indent + 1)
                else:
                    visit(child, indent)

        visit(self.root, 1)
        return "\n".join(lines)
