"""Dynamic-process-creation support: the *intercept* and *attach* methods.

Section 4.2.2 of the paper designs two ways for the tool to find processes
created by ``MPI_Comm_spawn``:

* **intercept** (what the paper implemented): a PMPI profiling wrapper
  replaces the user's command with ``paradynd``, so the MPI implementation
  starts tool daemons which then start (and are attached to) the real MPI
  processes.  Simple -- but it *inflates the measured cost of the spawn
  operation* and starts one daemon per process.
* **attach** (the paper's proposed better solution): let the spawn proceed
  untouched, discover where the children landed through the MPI debugging
  interface's process table (MPIR), and attach daemons afterwards.  Less
  overhead, but "as of this writing, neither LAM nor MPICH2 support the
  dynamic process creation parts of the debugging interface" -- in this
  reproduction only the ``refmpi`` personality exposes MPIR, exactly
  mirroring that landscape.

``bench_ablation_spawn_methods`` quantifies the overhead difference.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator

from ..mpi.errors import SpawnError

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi.runtime import Endpoint
    from ..mpi.world import MpiUniverse, MpiWorld
    from ..sim.process import SimProcess

__all__ = ["InterceptSpawnSupport", "AttachSpawnSupport", "SpawnSupport"]


class SpawnSupport:
    """Base: decides how spawned children become visible to the tool."""

    method = "none"

    def __init__(self, tool: Any) -> None:
        self.tool = tool
        #: (parent world, child pid) spawn-detection log for tests/benches
        self.detected: list[tuple[int, int]] = []

    def install(self, proc: "SimProcess", endpoint: "Endpoint") -> None:
        """Called at attach time on every monitored process."""

    def on_spawned_process(self, proc: "SimProcess", endpoint: "Endpoint", world: "MpiWorld") -> None:
        """Called by the tool when the universe reports a spawned process."""
        raise NotImplementedError


class InterceptSpawnSupport(SpawnSupport):
    """Wrap MPI_Comm_spawn with a PMPI profiling wrapper.

    The wrapper charges the cost of launching one paradynd per child before
    delegating to ``PMPI_Comm_spawn`` -- the overhead the paper identifies
    as this method's drawback.  Children are attached immediately at
    startup (the daemon started them).
    """

    method = "intercept"
    #: wrapper bookkeeping + paradynd launch time per spawned child
    wrapper_overhead = 2e-4
    daemon_launch_cost = 8e-3

    def install(self, proc: "SimProcess", endpoint: "Endpoint") -> None:
        image = proc.image
        if image.lookup("PMPI_Comm_spawn") is None:
            return  # implementation without spawn support
        support = self

        def wrapper(wproc, command, argv, maxprocs, info, root, comm) -> Generator:
            cost = support.wrapper_overhead + support.daemon_launch_cost * maxprocs
            yield from wproc.compute(cost)
            result = yield from wproc.call(
                "PMPI_Comm_spawn", command, argv, maxprocs, info, root, comm
            )
            return result

        image.interpose(
            "MPI_Comm_spawn", wrapper, module="libparadyn_wrap.so", tags={"mpi", "spawn", "sync"}
        )

    def on_spawned_process(self, proc, endpoint, world) -> None:
        self.detected.append((world.world_id, proc.pid))
        self.tool.attach_process(proc, endpoint, world)


class AttachSpawnSupport(SpawnSupport):
    """Discover children through the MPIR process table, then attach.

    The spawn call itself is not perturbed; attachment happens
    ``attach_latency`` later (daemon startup on the child's node).  Requires
    an MPI implementation exposing the MPIR spawn table.
    """

    method = "attach"
    attach_latency = 5e-3

    def __init__(self, tool: Any) -> None:
        super().__init__(tool)
        impl = tool.universe.impl
        if not impl.supports("mpir_proctable"):
            raise SpawnError(
                f"{impl.name} does not expose the MPIR debugging interface; "
                "the attach method needs it (use intercept instead)"
            )

    def on_spawned_process(self, proc, endpoint, world) -> None:
        table = self.tool.universe.mpir_proctable
        if not any(desc.pid == proc.pid and desc.spawned for desc in table):
            return  # invisible without the debug interface
        self.detected.append((world.world_id, proc.pid))
        kernel = self.tool.universe.kernel

        def attach_later() -> None:
            self.tool.attach_process(proc, endpoint, world)

        kernel.schedule(self.attach_latency, attach_later)
