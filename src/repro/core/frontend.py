"""The tool front end: data management, resource updates, metric-focus pairs.

Paradyn consists of a front-end process that collects and visualizes data
and searches for bottlenecks, plus daemons on each node (Section 4 of the
paper).  This module is the front end: it owns the Resource Hierarchy, the
per-(metric, focus) histograms, the window-id uniquifier, and the update
protocol the paper added for MPI-2 object naming and retirement
(Section 4.2.3): daemons send update reports; the front end refreshes the
display name or grays the resource out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from .costmodel import DEFAULT_COST_LIMIT, CostTracker
from .histogram import FoldingHistogram
from .mdl import MdlLibrary, MetricInstance
from .metrics import NATIVE_METRICS, SYSTEM_TIME_METRIC
from .resources import Focus, Resource, ResourceHierarchy

if TYPE_CHECKING:  # pragma: no cover
    from .daemon import Daemon

__all__ = ["Frontend", "MetricFocusData", "NativeInstance"]


@dataclass
class NativeInstance:
    """A metric sampled straight from process clocks (cpu, exec_time)."""

    metric_name: str
    focus: Focus
    proc: Any
    sampler: Callable[[Any], float]
    _last: float = 0.0

    def sample_delta(self) -> float:
        value = self.sampler(self.proc)
        delta = value - self._last
        self._last = value
        return delta

    def delete(self) -> None:  # no instrumentation to remove
        pass


class MetricFocusData:
    """All data for one enabled metric-focus pair."""

    def __init__(
        self,
        metric_name: str,
        focus: Focus,
        *,
        num_bins: int,
        bin_width: float,
        start_time: float,
        normalized: bool,
    ) -> None:
        self.metric_name = metric_name
        self.focus = focus
        self.normalized = normalized
        self.enabled_at = start_time
        self.num_bins = num_bins
        self.bin_width = bin_width
        self.per_process: dict[int, FoldingHistogram] = {}
        self.instances: list[Any] = []  # MetricInstance | NativeInstance
        self.active = True
        #: running max of ``folds`` over ``per_process`` -- folds only ever
        #: happen inside :meth:`record`, so tracking the max there keeps the
        #: daemon's fold-coupled interval check O(pairs), not O(pairs x ranks)
        self.max_folds = 0

    def histogram_for(self, pid: int) -> FoldingHistogram:
        hist = self.per_process.get(pid)
        if hist is None:
            hist = FoldingHistogram(
                num_bins=self.num_bins,
                bin_width=self.bin_width,
                start_time=self.enabled_at,
                name=f"{self.metric_name}@{self.focus.describe()}#pid{pid}",
            )
            self.per_process[pid] = hist
        return hist

    def record(self, pid: int, time: float, delta: float) -> None:
        hist = self.histogram_for(pid)
        hist.add(time, delta)
        if hist.folds > self.max_folds:
            self.max_folds = hist.folds

    # -- analysis ---------------------------------------------------------------

    @property
    def num_processes(self) -> int:
        return max(1, len(self.per_process))

    def total(self) -> float:
        return sum(h.total() for h in self.per_process.values())

    def aggregate_histogram(self) -> FoldingHistogram:
        """Sum the per-process histograms (aggregateOperator sum)."""
        agg = FoldingHistogram(
            num_bins=self.num_bins,
            bin_width=self.bin_width,
            start_time=self.enabled_at,
            name=f"{self.metric_name}@{self.focus.describe()}#agg",
        )
        for hist in self.per_process.values():
            width = hist.bin_width
            for i, value in enumerate(hist.filled_bins()):
                if value:
                    agg.add(hist.start_time + (i + 0.5) * width, float(value))
        return agg

    def value_over(self, t0: float, t1: float) -> float:
        """Accumulated value in [t0, t1) across processes (approximate to
        bin granularity, like Paradyn's own evaluations)."""
        total = 0.0
        for hist in self.per_process.values():
            width = hist.bin_width
            bins = hist.filled_bins()
            for i, value in enumerate(bins):
                b0 = hist.start_time + i * width
                b1 = b0 + width
                overlap = max(0.0, min(b1, t1) - max(b0, t0))
                if overlap > 0.0 and value:
                    total += float(value) * (overlap / width)
        return total

    def mean_normalized(self, t0: float, t1: float) -> float:
        """Value per process per second over [t0, t1) -- the quantity
        hypothesis thresholds compare against (a fraction of one CPU for
        normalized metrics)."""
        span = t1 - t0
        if span <= 0.0:
            return 0.0
        return self.value_over(t0, t1) / span / self.num_processes

    def _value_over_hist(self, hist: FoldingHistogram, t0: float, t1: float) -> float:
        width = hist.bin_width
        total = 0.0
        for i, value in enumerate(hist.filled_bins()):
            if not value:
                continue
            b0 = hist.start_time + i * width
            overlap = max(0.0, min(b0 + width, t1) - max(b0, t0))
            if overlap > 0.0:
                total += float(value) * (overlap / width)
        return total

    def max_normalized(self, t0: float, t1: float) -> float:
        """The *worst process's* per-second value over [t0, t1).

        The Performance Consultant tests hypotheses against this: a
        bottleneck on any process is worth refining, even when averaging
        over the whole job would dilute it (an overloaded server among
        idle clients, the paper's intensive-server scenario)."""
        span = t1 - t0
        if span <= 0.0 or not self.per_process:
            return 0.0
        return max(
            self._value_over_hist(hist, t0, t1) / span
            for hist in self.per_process.values()
        )


class Frontend:
    """Front-end state: hierarchy, enabled pairs, naming/retirement."""

    def __init__(
        self,
        library: Optional[MdlLibrary] = None,
        *,
        num_bins: int = 1000,
        bin_width: float = 0.2,
        extended_native: bool = False,
    ) -> None:
        from .metrics import build_library

        self.library = library or build_library()
        self.hierarchy = ResourceHierarchy()
        self.num_bins = num_bins
        self.bin_width = bin_width
        self.daemons: list["Daemon"] = []
        self.enabled: dict[tuple[str, Focus], MetricFocusData] = {}
        self._seen_tags: set[tuple[int, int]] = set()
        self._window_uids: dict[int, str] = {}  # id(win) -> "N-M"
        self._native = dict(NATIVE_METRICS)
        if extended_native:
            self._native.update(SYSTEM_TIME_METRIC)
        #: Paradyn-style observed instrumentation cost (see core.costmodel)
        self.cost_tracker = CostTracker(DEFAULT_COST_LIMIT)

    # -- daemons ---------------------------------------------------------------

    def add_daemon(self, daemon: "Daemon") -> None:
        self.daemons.append(daemon)

    def all_procs(self) -> list[Any]:
        return [proc for daemon in self.daemons for proc in daemon.procs]

    def procs_matching(self, focus: Focus) -> list[Any]:
        """Processes selected by the focus's /Machine component."""
        component = focus.machine
        selected = []
        for daemon in self.daemons:
            for proc in daemon.procs:
                path = f"/Machine/{proc.node.name}/pid{proc.pid}"
                if path == component or path.startswith(component + "/") or component == "/Machine":
                    selected.append(proc)
        return selected

    # -- resource updates (daemon -> front end protocol) -----------------------------

    def report_new_process(self, proc: Any) -> Resource:
        return self.hierarchy.add_process(proc.node.name, proc.pid, obj=proc)

    def report_new_communicator(self, comm: Any) -> Resource:
        return self.hierarchy.add_communicator(comm)

    #: tag resources are capped per communicator (runaway programs could
    #: otherwise flood the hierarchy with one resource per message)
    MAX_TAGS_PER_COMM = 50

    def report_tag(self, comm: Any, tag: int) -> None:
        """A daemon saw a send with this (communicator, tag) pair."""
        if tag < 0:
            return
        key = (comm.cid, tag)
        if key in self._seen_tags:
            return
        self._seen_tags.add(key)
        path = f"/SyncObject/Message/comm_{comm.cid}"
        if not self.hierarchy.exists(path):
            self.report_new_communicator(comm)
        node = self.hierarchy.find(path)
        if len(node.children) < self.MAX_TAGS_PER_COMM:
            self.hierarchy.add_message_tag(node, tag)

    def report_new_window(self, win: Any) -> str:
        """Register a window; returns its unique N-M identifier.

        Every daemon reports the windows its own processes create, so the
        same (collectively created) window arrives once per rank; the
        front end de-duplicates by object identity."""
        existing = self._window_uids.get(id(win))
        if existing is not None:
            return existing
        node = self.hierarchy.add_window(win)
        self._window_uids[id(win)] = node.name
        return node.name

    def window_uid(self, win: Any) -> str:
        uid = self._window_uids.get(id(win))
        if uid is None:
            uid = self.report_new_window(win)
        return uid

    def report_window_freed(self, win: Any) -> None:
        node = self.hierarchy.window_resource_for(win)
        if node is not None:
            self.hierarchy.retire(node)
        self._window_uids.pop(id(win), None)

    def report_name_change(self, obj: Any, name: str) -> None:
        """A daemon saw MPI_{Comm,Win}_set_name: update the display."""
        node: Optional[Resource] = None
        if hasattr(obj, "win_id"):
            node = self.hierarchy.window_resource_for(obj)
            # LAM stores window names in the window's hidden communicator
            # (Figure 23): mirror the name onto that resource as well
            internal = getattr(obj, "internal_comm", None)
            if internal is not None:
                path = f"/SyncObject/Message/comm_{internal.cid}"
                if self.hierarchy.exists(path):
                    self.hierarchy.set_display_name(self.hierarchy.find(path), name)
        elif hasattr(obj, "cid"):
            path = f"/SyncObject/Message/comm_{obj.cid}"
            if self.hierarchy.exists(path):
                node = self.hierarchy.find(path)
        if node is not None:
            self.hierarchy.set_display_name(node, name)

    # -- metric-focus management -----------------------------------------------------

    def is_native(self, metric_name: str) -> bool:
        return metric_name in self._native

    def metric_is_normalized(self, metric_name: str) -> bool:
        if metric_name in self._native:
            return self._native[metric_name][0] == "normalized"
        return self.library.metric(metric_name).units_type == "normalized"

    def enable(self, metric_name: str, focus: Focus, *, now: float) -> MetricFocusData:
        """Enable a metric-focus pair: instrument every matching process."""
        key = (metric_name, focus)
        data = self.enabled.get(key)
        if data is not None and data.active:
            return data
        data = MetricFocusData(
            metric_name,
            focus,
            num_bins=self.num_bins,
            bin_width=self.bin_width,
            start_time=now,
            normalized=self.metric_is_normalized(metric_name),
        )
        self.enabled[key] = data
        for daemon in self.daemons:
            daemon.instrument_pair(data)
        return data

    def disable(self, metric_name: str, focus: Focus) -> None:
        data = self.enabled.get((metric_name, focus))
        if data is None:
            return
        for instance in data.instances:
            # final sample so accumulation since the last daemon tick is
            # not lost with the instrumentation
            delta = instance.sample_delta()
            if delta:
                data.record(instance.proc.pid, instance.proc.kernel.now, delta)
            instance.delete()
        data.instances.clear()
        data.active = False
        for daemon in self.daemons:
            daemon.invalidate_sample_plan()

    def attach_new_process(self, proc: Any) -> None:
        """Extend already-enabled whole-machine pairs onto a newly attached
        process (spawned children join ongoing measurements)."""
        for data in self.enabled.values():
            if not data.active:
                continue
            if data.focus.machine == "/Machine":
                for daemon in self.daemons:
                    if proc in daemon.procs:
                        daemon.instrument_proc(data, proc)

    def native_sampler(self, metric_name: str) -> Callable[[Any], float]:
        return self._native[metric_name][1]
