"""Paradyn's instrumentation cost model.

Paradyn tracked the *observed cost* of its own instrumentation -- the
fraction of each mutatee's time spent executing inserted snippets -- and
throttled the Performance Consultant when that cost exceeded a tunable
limit, so the search could never perturb the application past a bound.
This module reproduces that mechanism: daemons feed per-process snippet
execution counts into a :class:`CostTracker`; the PC consults
:meth:`CostTracker.observed_fraction` before enabling new experiments.

The paper leans on the cheapness of dynamic instrumentation ("performance
measurement instructions only need to be inserted in code sections where a
performance problem is suspected"); the cost model is what makes that a
guarantee rather than a hope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["CostTracker", "DEFAULT_COST_LIMIT"]

#: default observed-cost limit (fraction of mutatee time).  Paradyn shipped
#: with a permissive default (its Tunable Constant ``costLimit``); 20% keeps
#: the search unthrottled on ordinary workloads while still bounding
#: pathological instrumentation (see the cost-model tests and the
#: instrumentation-overhead ablation).
DEFAULT_COST_LIMIT = 0.20


@dataclass
class _ProcCost:
    last_snippets: int = 0
    last_time: float = 0.0
    recent_fraction: float = 0.0


class CostTracker:
    """Sliding observation of per-process instrumentation overhead."""

    def __init__(self, cost_limit: float = DEFAULT_COST_LIMIT) -> None:
        self.cost_limit = cost_limit
        self._procs: dict[int, _ProcCost] = {}
        #: number of times the consultant was throttled (for reporting)
        self.throttle_events = 0

    def observe(self, proc: Any, now: float) -> float:
        """Update the overhead estimate for one process; returns its recent
        overhead fraction (snippet-seconds per wall-second)."""
        state = self._procs.setdefault(proc.pid, _ProcCost(last_time=proc.start_time))
        elapsed = now - state.last_time
        if elapsed <= 0.0:
            return state.recent_fraction
        executed = proc.snippets_executed - state.last_snippets
        state.last_snippets = proc.snippets_executed
        state.last_time = now
        state.recent_fraction = executed * proc.snippet_cost / elapsed
        return state.recent_fraction

    def observed_fraction(self) -> float:
        """The worst process's recent instrumentation overhead."""
        if not self._procs:
            return 0.0
        return max(state.recent_fraction for state in self._procs.values())

    def over_limit(self) -> bool:
        over = self.observed_fraction() > self.cost_limit
        if over:
            self.throttle_events += 1
        return over
