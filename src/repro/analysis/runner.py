"""One-call experiment harness: program + implementation -> tool results.

Wraps the common recipe of the paper's experiments: build a cluster shaped
like the paper's runs ("two each on three nodes"), create the universe for
the chosen MPI implementation, attach the tool, optionally start the
Performance Consultant and/or enable metric-focus pairs, run to
completion, and hand back everything the analyses need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from ..core.resources import Focus
from ..core.tool import Paradyn
from ..mpi.world import MpiUniverse, MpiWorld
from ..pperfmark.base import PPerfProgram
from ..sim.node import Cluster

__all__ = ["RunResult", "run_program", "cluster_for"]


@dataclass
class RunResult:
    """Everything produced by one experiment run."""

    program: PPerfProgram
    impl: str
    universe: MpiUniverse
    world: MpiWorld
    tool: Optional[Paradyn]
    elapsed: float

    @property
    def consultant(self):
        if self.tool is None:
            raise RuntimeError("run had no tool attached")
        return self.tool.consultant

    def histogram(self, metric: str, focus: Optional[Focus] = None, pid: Optional[int] = None):
        assert self.tool is not None
        return self.tool.histogram(metric, focus, pid=pid)

    def data(self, metric: str, focus: Optional[Focus] = None):
        assert self.tool is not None
        return self.tool.data(metric, focus)

    def proc(self, rank: int):
        return self.world.endpoints[rank].proc


def cluster_for(nprocs: int, procs_per_node: int, cpus_per_node: int = 2) -> Cluster:
    """A cluster sized like the paper's runs (N procs, k per node)."""
    procs_per_node = max(1, min(procs_per_node, cpus_per_node))
    nodes = max(2, math.ceil(nprocs / procs_per_node))
    return Cluster(num_nodes=nodes, cpus_per_node=cpus_per_node)


def run_program(
    program: PPerfProgram,
    *,
    impl: str = "lam",
    nprocs: Optional[int] = None,
    with_tool: bool = True,
    consultant: bool = True,
    metrics: Sequence[tuple[str, Focus]] = (),
    thresholds: Optional[dict[str, float]] = None,
    pc_window: float = 0.8,
    bin_width: float = 0.2,
    snippet_cost: float = 2.5e-7,
    legacy_metrics: bool = False,
    extended_io: bool = False,
    spawn_method: str = "intercept",
    seed: int = 0,
    until: Optional[float] = None,
    num_bins: int = 1000,
) -> RunResult:
    """Run one PPerfMark program under the tool and return the results."""
    nprocs = nprocs or program.default_nprocs
    cluster = cluster_for(nprocs, program.procs_per_node)
    universe = MpiUniverse(impl=impl, cluster=cluster, seed=seed)
    tool: Optional[Paradyn] = None
    if with_tool:
        tool = Paradyn(
            universe,
            bin_width=bin_width,
            num_bins=num_bins,
            snippet_cost=snippet_cost,
            legacy_metrics=legacy_metrics,
            extended_io=extended_io,
            spawn_method=spawn_method,
            pc_thresholds=thresholds,
            pc_experiment_window=pc_window,
        )
        for metric, focus in metrics:
            tool.enable(metric, focus)
        if consultant:
            tool.run_consultant()
    # placement: procs_per_node ranks per node, in node order
    placement = []
    per_node = max(1, min(program.procs_per_node, cluster.nodes[0].num_cpus))
    for rank in range(nprocs):
        node = cluster.nodes[(rank // per_node) % cluster.num_nodes]
        placement.append(node.cpus[rank % per_node])
    world = universe.launch(program, nprocs, placement=placement)
    universe.run(until=until)
    return RunResult(
        program=program,
        impl=impl,
        universe=universe,
        world=world,
        tool=tool,
        elapsed=universe.kernel.now,
    )
