"""Experiment harness, verdict logic (Tables 2/3), statistics, reports."""

from .report import (
    PaperComparison,
    format_table,
    render_comparisons,
    render_sanitizer_report,
    render_sanitizer_summary,
    render_table1,
    render_table2,
    render_table3,
)
from .runner import RunResult, cluster_for, run_program
from .stats import PairedComparison, paired_difference, relative_difference
from .verify import (
    MPI1_PROGRAMS,
    MPI2_PROGRAMS,
    Verdict,
    table2_rows,
    table3_rows,
    verify_program,
)

__all__ = [
    "run_program",
    "RunResult",
    "cluster_for",
    "Verdict",
    "verify_program",
    "table2_rows",
    "table3_rows",
    "MPI1_PROGRAMS",
    "MPI2_PROGRAMS",
    "PairedComparison",
    "paired_difference",
    "relative_difference",
    "format_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_sanitizer_report",
    "render_sanitizer_summary",
    "PaperComparison",
    "render_comparisons",
]
