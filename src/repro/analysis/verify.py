"""Pass/fail verdicts for the PPerfMark suite (Tables 2 and 3).

Each program carries a behavioural contract
(:class:`repro.pperfmark.base.Expectation`); this module runs a program
under the tool, checks the Performance Consultant's true nodes -- plus
program-specific exact checks (operation counts for ``allcount``, window
detection for ``wincreateblast``, process detection for the spawn
programs) -- and produces the Pass/Fail rows of the paper's Tables 2/3.

Programs the paper marks specially are preserved:

* ``system_time`` must FAIL (all hypotheses false; Paradyn has no default
  system-time metrics);
* ``diffuse_procedure`` requires the CPU threshold lowered to 0.2 before
  the computational bottleneck is found, so its verdict run uses that
  setting and the detail notes it (Section 5.1.7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.resources import Focus
from ..pperfmark.base import REGISTRY, Expectation, PPerfProgram
from .runner import RunResult, run_program

__all__ = ["Verdict", "verify_program", "table2_rows", "table3_rows", "MPI1_PROGRAMS", "MPI2_PROGRAMS"]

MPI1_PROGRAMS = (
    "small_messages",
    "big_message",
    "wrong_way",
    "intensive_server",
    "random_barrier",
    "diffuse_procedure",
    "system_time",
    "hot_procedure",
)

MPI2_PROGRAMS = (
    "allcount",
    "wincreateblast",
    "winfencesync",
    "winscpwsync",
    "spawncount",
    "spawnsync",
    "spawnwinsync",
)

#: per-program run configuration used for the verdict runs
_RUN_CONFIG: dict[str, dict[str, Any]] = {
    # the paper lowered the CPU-usage threshold to 0.2 for this program
    "diffuse_procedure": {"thresholds": {"PC_CPUThreshold": 0.2}},
}

_WHOLE = Focus.whole_program()

#: metric-focus pairs pre-enabled for programs verified by exact counters
_RUN_METRICS: dict[str, list] = {
    "allcount": [
        ("rma_put_ops", _WHOLE),
        ("rma_get_ops", _WHOLE),
        ("rma_acc_ops", _WHOLE),
        ("rma_ops", _WHOLE),
        ("rma_put_bytes", _WHOLE),
        ("rma_get_bytes", _WHOLE),
        ("rma_acc_bytes", _WHOLE),
        ("rma_bytes", _WHOLE),
    ],
    "spawnsync": [("msgs_recv", _WHOLE), ("msg_bytes_recv", _WHOLE)],
}


@dataclass
class Verdict:
    """One row of Table 2 / Table 3.

    Two distinct judgements live here:

    * :attr:`tool_result` -- the Pass/Fail the paper's table prints (did
      the *tool* correctly diagnose the program; "Fail" for system-time);
    * :attr:`passed` -- did this *reproduction* match the paper's row.
    """

    program: str
    impl: str
    passed: bool = False
    tool_result: str = ""
    paper_result: str = "Pass"
    details: list[str] = field(default_factory=list)
    description: str = ""
    result: Optional[RunResult] = None

    @property
    def result_text(self) -> str:
        return self.tool_result

    def note(self, ok: bool, text: str) -> bool:
        self.details.append(("PASS " if ok else "MISS ") + text)
        return ok


def _check_expectation(verdict: Verdict, expectation: Expectation, result: RunResult) -> bool:
    pc = result.consultant
    ok = True
    if expectation.all_false:
        true_nodes = pc.true_nodes()
        good = not true_nodes
        verdict.note(
            good,
            "Performance Consultant reports every hypothesis false"
            + ("" if good else f" (found {[n.describe() for n in true_nodes[:4]]})"),
        )
        # the paper records this behaviour as a *failed* test for the tool
        return good
    for requirement in expectation.required:
        hypothesis, *needles = requirement
        found = pc.found(hypothesis, *needles)
        what = f"{hypothesis}" + (f" at {'/'.join(needles)}" if needles else "")
        ok &= verdict.note(found, f"PC finds {what}")
    for forbidden in expectation.forbidden:
        hypothesis, *needles = forbidden
        found = pc.found(hypothesis, *needles)
        what = f"{hypothesis}" + (f" at {'/'.join(needles)}" if needles else "")
        ok &= verdict.note(not found, f"PC does not report {what}")
    return ok


def _close(measured: float, expected: float, tolerance: float = 0.02) -> bool:
    if expected == 0:
        return measured == 0
    return abs(measured - expected) / abs(expected) <= tolerance


def _verify_allcount(verdict: Verdict, result: RunResult) -> bool:
    program = result.program
    ok = True
    pairs = [
        ("rma_put_ops", program.expected_put_ops()),
        ("rma_get_ops", program.expected_get_ops()),
        ("rma_acc_ops", program.expected_acc_ops()),
        ("rma_ops", program.expected_put_ops() + program.expected_get_ops() + program.expected_acc_ops()),
        ("rma_put_bytes", program.expected_put_bytes()),
        ("rma_get_bytes", program.expected_get_bytes()),
        ("rma_acc_bytes", program.expected_acc_bytes()),
        ("rma_bytes", program.expected_put_bytes() + program.expected_get_bytes() + program.expected_acc_bytes()),
    ]
    for metric, expected in pairs:
        measured = result.data(metric).total()
        ok &= verdict.note(
            _close(measured, expected, 0.0),
            f"{metric}: measured {measured:.0f} == expected {expected}",
        )
    ok &= verdict.note(program.verified, "window contents verified by the program")
    return ok


def _verify_wincreateblast(verdict: Verdict, result: RunResult) -> bool:
    program = result.program
    hierarchy = result.tool.hierarchy
    windows = list(hierarchy.sync_objects.child("Window").children.values())
    ok = verdict.note(
        len(windows) == program.num_windows,
        f"{len(windows)} window resources for {program.num_windows} windows created",
    )
    names = [w.name for w in windows]
    ok &= verdict.note(len(set(names)) == len(names), "all N-M identifiers unique")
    impl_ids = {int(name.split("-")[0]) for name in names}
    ok &= verdict.note(
        len(impl_ids) < program.num_windows,
        f"implementation reused ids ({len(impl_ids)} distinct for {program.num_windows} windows)",
    )
    retired = sum(1 for w in windows if w.retired)
    ok &= verdict.note(retired == program.num_windows, f"{retired} windows retired after MPI_Win_free")
    return ok


def _verify_spawncount(verdict: Verdict, result: RunResult) -> bool:
    program = result.program
    hierarchy = result.tool.hierarchy
    procs = [
        node
        for machine in hierarchy.machine.children.values()
        for node in machine.children.values()
    ]
    expected = result.world.size + program.expected_children()
    ok = verdict.note(
        len(procs) == expected,
        f"{len(procs)} process resources == {result.world.size} parents + "
        f"{program.expected_children()} spawned children",
    )
    detected = len(result.tool.spawn_support.detected)
    ok &= verdict.note(
        detected == program.expected_children(),
        f"spawn support detected {detected} children",
    )
    return ok


def _verify_spawnsync_counts(verdict: Verdict, result: RunResult) -> bool:
    program = result.program
    expected = program.expected_messages()
    measured = result.data("msgs_recv").total()
    # children also receive nothing else on the intercomm; parents receive 0
    return verdict.note(
        _close(measured, expected, 0.05),
        f"counted {measured:.0f} received messages ~= expected {expected}",
    )


def _verify_spawnwinsync_naming(verdict: Verdict, result: RunResult) -> bool:
    hierarchy = result.tool.hierarchy
    named = [
        node.display_name
        for node in hierarchy.sync_objects.walk()
        if node.display_name
    ]
    return verdict.note(
        "ParentChildWin" in named,
        f"window friendly name displayed (names seen: {sorted(set(named))})",
    )


def verify_program(
    name: str,
    impl: str = "lam",
    *,
    program: Optional[PPerfProgram] = None,
    **run_overrides: Any,
) -> Verdict:
    """Run one PPerfMark program under the tool and grade the result."""
    cls = REGISTRY[name]
    program = program or cls()
    verdict = Verdict(
        program=name,
        impl=impl,
        description=cls.description,
        paper_result="Fail" if name == "system_time" else "Pass",
    )
    config: dict[str, Any] = dict(_RUN_CONFIG.get(name, {}))
    config.update(run_overrides)
    config.setdefault("metrics", _RUN_METRICS.get(name, []))
    result = run_program(program, impl=impl, **config)
    verdict.result = result

    ok = _check_expectation(verdict, program.expectation, result)
    if name == "allcount":
        ok &= _verify_allcount(verdict, result)
    elif name == "wincreateblast":
        ok &= _verify_wincreateblast(verdict, result)
    elif name == "spawncount":
        ok &= _verify_spawncount(verdict, result)
    elif name == "spawnsync":
        ok &= _verify_spawnsync_counts(verdict, result)
    elif name == "spawnwinsync":
        ok &= _verify_spawnwinsync_naming(verdict, result)

    if name == "system_time":
        # the behavioural contract held (everything false), which for this
        # program means the tool FAILED the test -- exactly the paper's row
        verdict.tool_result = "Fail" if ok else "Pass"
        verdict.details.append(
            "Paradyn does not have default metrics for system time -> Fail"
        )
    else:
        verdict.tool_result = "Pass" if ok else "Fail"
    verdict.passed = verdict.tool_result == verdict.paper_result
    return verdict


def table2_rows(impls: tuple[str, ...] = ("lam", "mpich"), **overrides: Any) -> list[Verdict]:
    """Regenerate Table 2 (PPerfMark MPI-1) for the given implementations."""
    rows = []
    for name in MPI1_PROGRAMS:
        for impl in impls:
            rows.append(verify_program(name, impl, **overrides))
    return rows


def table3_rows(impl: str = "lam", **overrides: Any) -> list[Verdict]:
    """Regenerate Table 3 (PPerfMark MPI-2).

    LAM is the primary implementation (as in the paper: MPICH2 0.96p2 did
    not support dynamic process creation, so the spawn programs ran under
    LAM only)."""
    rows = []
    for name in MPI2_PROGRAMS:
        rows.append(verify_program(name, impl, **overrides))
    return rows
