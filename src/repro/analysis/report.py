"""Text rendering for the paper's tables and figures.

The benchmark harness prints, for every table and figure, the paper's
reported values next to this reproduction's measured values; the helpers
here keep that formatting in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

from ..core.metrics import TABLE1_ROWS
from .verify import Verdict

__all__ = [
    "format_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_sanitizer_report",
    "render_sanitizer_summary",
    "PaperComparison",
    "render_comparisons",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Monospace table with auto-sized columns."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_table1(library=None) -> str:
    """Table 1: the RMA metric definitions, regenerated from the registry."""
    from ..core.metrics import build_library

    library = library or build_library()
    rows = []
    for metric, description, functions in TABLE1_ROWS:
        definition = library.metric(metric)
        units = definition.units
        rows.append((metric, units, description, functions))
    return format_table(("Metric", "Units", "Description", "MPI Functions"), rows)


def render_table2(verdicts: Sequence[Verdict]) -> str:
    """Table 2: PPerfMark MPI-1 results."""
    rows = []
    for v in verdicts:
        rows.append((v.program, v.impl, v.result_text, v.paper_result,
                     "match" if v.passed else "MISMATCH"))
    return format_table(
        ("Program", "Impl", "Result", "Paper", "Reproduction"), rows
    )


def render_table3(verdicts: Sequence[Verdict]) -> str:
    """Table 3: PPerfMark MPI-2 results."""
    return render_table2(verdicts)


def render_sanitizer_report(report) -> str:
    """One sanitized run: header line plus one line per finding."""
    header = (
        f"{report.program} / {report.impl} (np={report.nprocs}, "
        f"seed={report.seed}): {report.status.upper()}"
    )
    lines = [header]
    if report.status == "unsupported" and report.crash:
        lines.append(f"    {report.crash}")
    for finding in report.findings:
        where = f"rank {finding.rank}" if finding.rank >= 0 else "global"
        lines.append(f"    {finding.kind.value:<22} {where:<8} {finding.detail}")
    if report.crash and report.status == "findings":
        lines.append(f"    run aborted: {report.crash}")
    return "\n".join(lines)


def render_sanitizer_summary(reports: Sequence[Any]) -> str:
    """A table over many sanitized runs (the CLI sweep footer)."""
    rows = []
    for r in reports:
        kinds = ", ".join(sorted({f.kind.value for f in r.findings})) or "-"
        rows.append((r.program, r.impl, r.nprocs, r.status, len(r.findings), kinds))
    return format_table(
        ("Program", "Impl", "Np", "Status", "Findings", "Kinds"), rows
    )


@dataclass(frozen=True)
class PaperComparison:
    """One paper-reported quantity vs. this reproduction's measurement."""

    quantity: str
    paper: str
    measured: str
    holds: bool
    note: str = ""


def render_comparisons(title: str, comparisons: Sequence[PaperComparison]) -> str:
    rows = [
        (c.quantity, c.paper, c.measured, "yes" if c.holds else "NO", c.note)
        for c in comparisons
    ]
    table = format_table(("Quantity", "Paper", "Measured", "Shape holds", "Note"), rows)
    return f"== {title} ==\n{table}"
