"""Statistical comparison utilities (Section 5.2.1.3 of the paper).

The paper compares Paradyn's RMA measurements against the Presta ``rma``
benchmark's own numbers and asks whether the differences are statistically
significant "by inspecting the confidence interval of the mean of the
differences of the two sets of measurements" -- a paired-difference t
confidence interval.  This module implements that test plus small helpers
for relative differences.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

try:  # scipy is available in this environment, but keep a fallback
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover
    _scipy_stats = None

__all__ = ["PairedComparison", "paired_difference", "relative_difference"]


def _t_critical(df: int, confidence: float) -> float:
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df))
    # Normal approximation fallback (fine for df >= 30)
    from math import erf, sqrt

    # inverse via bisection on the standard normal CDF
    lo, hi = 0.0, 10.0
    target = 0.5 + confidence / 2.0
    for _ in range(80):
        mid = (lo + hi) / 2.0
        if 0.5 * (1.0 + erf(mid / sqrt(2.0))) < target:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


@dataclass(frozen=True)
class PairedComparison:
    """Result of a paired-difference confidence-interval test."""

    label: str
    n: int
    mean_a: float
    mean_b: float
    mean_diff: float
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def significant(self) -> bool:
        """True when the CI of the mean difference excludes zero."""
        return not (self.ci_low <= 0.0 <= self.ci_high)

    @property
    def relative_difference(self) -> float:
        """|mean difference| relative to the first series' mean."""
        if self.mean_a == 0.0:
            return 0.0
        return abs(self.mean_diff) / abs(self.mean_a)

    def describe(self) -> str:
        verdict = "SIGNIFICANT" if self.significant else "not significant"
        return (
            f"{self.label}: mean diff {self.mean_diff:+.4g} "
            f"(95% CI [{self.ci_low:.4g}, {self.ci_high:.4g}]), "
            f"relative {100.0 * self.relative_difference:.2f}% -> {verdict}"
        )


def paired_difference(
    a: Sequence[float],
    b: Sequence[float],
    *,
    label: str = "",
    confidence: float = 0.95,
) -> PairedComparison:
    """Paired-difference t confidence interval for mean(a_i - b_i)."""
    a_arr = np.asarray(a, dtype=float)
    b_arr = np.asarray(b, dtype=float)
    if a_arr.shape != b_arr.shape or a_arr.ndim != 1:
        raise ValueError("paired comparison needs two equal-length 1-D series")
    n = a_arr.size
    if n < 2:
        raise ValueError("need at least 2 paired samples")
    diffs = a_arr - b_arr
    mean = float(diffs.mean())
    sd = float(diffs.std(ddof=1))
    half = _t_critical(n - 1, confidence) * sd / math.sqrt(n) if sd > 0 else 0.0
    return PairedComparison(
        label=label,
        n=n,
        mean_a=float(a_arr.mean()),
        mean_b=float(b_arr.mean()),
        mean_diff=mean,
        ci_low=mean - half,
        ci_high=mean + half,
        confidence=confidence,
    )


def relative_difference(a: float, b: float) -> float:
    """|a - b| / |a| (0 when a == 0)."""
    if a == 0.0:
        return 0.0 if b == 0.0 else float("inf")
    return abs(a - b) / abs(a)
